"""Shared, invalidation-aware analysis state for flow pipelines.

An :class:`AnalysisContext` memoizes the expensive artifacts every flow
stage keeps rebuilding from scratch — global BDDs of the
original/approximate pair, compiled simulator tapes, signal
probabilities, switching activity — keyed by each circuit's monotonic
mutation :attr:`~repro.network.Network.version`.  A repair that touches
one node therefore refreshes only the touched fanout cone of the "a\\_"
BDD functions (via :meth:`GlobalBdds.update_network`) instead of
triggering a wholesale rebuild, and downstream metrics/lint stages
reuse the checker's manager outright.

Correctness rests on BDD canonicity: a reused manager returns the same
functions (hence the same implication verdicts and minterm
probabilities) a fresh build would, so every consumer stays
bit-identical to its pre-context behavior.  The one divergence risk —
a shared manager hitting its node budget where a fresh build would not,
because it still holds garbage from earlier stages — is handled by
retrying exactly once with a from-scratch build before letting
:class:`~repro.bdd.BddOverflowError` escape.
"""

from __future__ import annotations

import hashlib

from repro.bdd import BddOverflowError
from repro.network import GlobalBdds, Network, dfs_input_order
from repro.sim import (get_simulator, signal_probabilities,
                       simulator_cache_stats, switching_activity)

#: Artifact kinds tracked by the hit/miss counters.  ``static`` counts
#: per-PO implication queries answered by the repro.analyze discharge
#: rung (hit = discharged, miss = fell through to an engine);
#: ``static_node`` counts the same for per-node repair-loop queries.
CACHE_KINDS = ("global_bdds", "simulator", "probabilities",
               "switching", "checkpoint", "proofs", "static",
               "static_node")


def _serialize_circuit(circuit) -> str:
    """Canonical text form of a circuit for content-keyed memoization.

    Two circuits with equal serializations compute identical signal
    probabilities and switching activity, whatever their object
    identity — this is what lets a re-loaded benchmark hit the caches
    a previous load populated.
    """
    lines = ["inputs:" + ",".join(circuit.inputs)]
    if hasattr(circuit, "gates"):       # MappedNetlist
        lines.append("library:" + circuit.library.name)
        for name in circuit.topological_order():
            gate = circuit.gates[name]
            lines.append(
                f"{name}<{gate.cell.name}<{','.join(gate.fanins)}")
        lines.append("pos:" + ",".join(
            f"{po}={sig}"
            for po, sig in sorted(circuit.po_signals.items())))
    else:                               # Network
        for name in circuit.topological_order():
            node = circuit.nodes[name]
            lines.append(f"{name}<{','.join(node.fanins)}"
                         f"<{';'.join(node.cover.to_strings())}")
        lines.append("outputs:" + ",".join(circuit.outputs))
    return "\n".join(lines)


class AnalysisContext:
    """Version-keyed memo of expensive analyses for one flow run.

    ``enabled=False`` turns every lookup into a fresh computation
    (counted as a miss) — the before/after switch the flow-performance
    benchmark uses to measure what the sharing buys.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Optional :class:`repro.guard.Budget` propagated onto every
        #: pair-BDD manager served by this context, so long builds poll
        #: the wall-clock deadline cooperatively.  Set (and cleared) by
        #: the governed flow; ``None`` means no enforcement.
        self.guard = None
        self.stats: dict[str, dict[str, int]] = {
            kind: {"hits": 0, "misses": 0} for kind in CACHE_KINDS}
        #: Single pair-BDD slot: one context serves one flow run, whose
        #: stages all compare the same original against evolving
        #: approximations.
        self._pair: dict | None = None
        #: Completed "o\_"-side build of the current original, plus a
        #: manager mark taken right after it: lets a later "fresh" pair
        #: build resume bit-exactly after the o\_ phase even when the
        #: a\_ side previously overflowed the budget.
        self._o_entry: dict | None = None
        #: Negative result: the original's own build overflowed at this
        #: budget, so any request at the same version with an equal or
        #: smaller budget must overflow identically (builds are
        #: deterministic and budget-independent until the cap trips).
        self._o_fail: dict | None = None
        #: Content-keyed memos: the key embeds a digest of the circuit
        #: itself, so an equal circuit loaded as a *different object*
        #: (a warm serve-style run) still hits.
        self._probs: dict[tuple, dict] = {}
        self._switching: dict[tuple, float] = {}
        #: Digest memo per live object: (circuit, version, token).
        self._tokens: dict[int, tuple] = {}
        self._sim_baseline = simulator_cache_stats()
        #: Optional :class:`repro.lab.proofs.ProofCache` consulted by
        #: the iterative checker and lint for per-PO implication
        #: verdicts; ``None`` (the default) keeps flows hermetic.
        self.proofs = None
        #: Per-object memo of :class:`repro.analyze.NetworkAnalyses`
        #: bundles (the static-discharge rung's dataflow solutions).
        self._analyses: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _hit(self, kind: str) -> None:
        self.stats[kind]["hits"] += 1

    def _miss(self, kind: str) -> None:
        self.stats[kind]["misses"] += 1

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Deep copy of the counters, folding in simulator-cache deltas
        accumulated since the context was created."""
        snap = {kind: dict(counters)
                for kind, counters in self.stats.items()}
        now = simulator_cache_stats()
        for key in ("hits", "misses"):
            delta = now[key] - self._sim_baseline[key]
            snap["simulator"][key] += max(delta, 0)
        if self.proofs is not None:
            snap["proofs"]["hits"] += self.proofs.hits
            snap["proofs"]["misses"] += self.proofs.misses
            snap["proofs"]["evictions"] = snap["proofs"].get(
                "evictions", 0) + self.proofs.evictions
        return snap

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Non-zero counter movement between two snapshots, by kind."""
        moved: dict = {}
        for kind, counters in after.items():
            base = before.get(kind, {})
            changed = {k: v - base.get(k, 0) for k, v in counters.items()
                       if v - base.get(k, 0)}
            if changed:
                moved[kind] = changed
        return moved

    def bdd_nodes(self) -> int | None:
        """Node count of the live pair-BDD manager, if any."""
        if self._pair is None:
            return None
        return int(self._pair["bdds"].manager.num_nodes)

    # ------------------------------------------------------------------
    # Pair BDDs (original vs approximate, shared PI space)
    # ------------------------------------------------------------------
    def pair_bdds(self, original: Network, approx: Network,
                  budget: int | None = None) -> GlobalBdds:
        """Global BDDs of ``original`` ("o\\_") and ``approx`` ("a\\_").

        The manager is kept across calls; an ``approx`` that mutated
        since the last call has only the changed cones recomputed, and
        a *different* approx object (a fresh synthesis attempt) rebuilds
        only the "a\\_" side, reusing every "o\\_" function.  Any change
        to ``original`` drops the entry (its DFS input order — the BDD
        variable order — could shift).
        """
        entry = self._pair
        # A cached entry may serve a request without a budget (no cap
        # to trip) or with one at least as large as the entry's own (a
        # fresh build at a larger cap succeeds identically).  Smaller
        # budgets go through _fresh_pair, which replays the build
        # exactly (fail-fast or manager rollback) so an overflow a
        # fresh build would hit is never masked.
        compatible = budget is None or (
            entry is not None and entry["budget"] is not None
            and budget >= entry["budget"])
        if (not self.enabled or entry is None
                or entry["original"] is not original
                or entry["orig_version"] != original.version
                or not compatible):
            return self._fresh_pair(original, approx, budget)
        try:
            bdds: GlobalBdds = entry["bdds"]
            bdds.manager.guard = self.guard
            if entry["approx"] is not approx:
                self._drop_prefix(bdds, "a_")
                bdds.add_network(approx, prefix="a_")
            else:
                changed = approx.changed_signals(entry["approx_version"])
                if changed is None:
                    self._drop_prefix(bdds, "a_")
                    bdds.add_network(approx, prefix="a_")
                elif changed:
                    bdds.update_network(approx, prefix="a_",
                                        changed=changed)
            entry["approx"] = approx
            entry["approx_version"] = approx.version
            self._hit("global_bdds")
            return bdds
        except BddOverflowError:
            # The shared manager may carry garbage from earlier stages;
            # a fresh build gets one clean shot before overflow escapes.
            return self._fresh_pair(original, approx, budget)

    def _fresh_pair(self, original: Network, approx: Network,
                    budget: int | None) -> GlobalBdds:
        self._pair = None
        fail = self._o_fail
        if (self.enabled and fail is not None
                and fail["original"] is original
                and fail["version"] == original.version
                and budget is not None and budget <= fail["budget"]):
            # Known-doomed build: the o_ side overflowed at a budget at
            # least this large.  The build sequence is deterministic and
            # independent of the cap, so replaying it would overflow at
            # the same point — fail fast instead.
            self._hit("global_bdds")
            raise BddOverflowError(
                f"BDD node budget of {budget} exceeded "
                "(cached overflow verdict)")
        oentry = self._o_entry
        if (self.enabled and oentry is not None
                and oentry["original"] is original
                and oentry["orig_version"] == original.version):
            if budget is not None and oentry["o_created"] > budget:
                # The o_ side alone is known to allocate more nodes
                # than this budget allows; a fresh build must overflow
                # before ever reaching the approx.
                self._hit("global_bdds")
                raise BddOverflowError(
                    f"BDD node budget of {budget} exceeded "
                    "(cached overflow verdict)")
            # Rewind the manager to the state a fresh build would be in
            # right after the o_ phase, then build only the a_ side.
            bdds: GlobalBdds = oentry["bdds"]
            bdds.manager.guard = self.guard
            bdds.manager.rollback(oentry["mark"])
            bdds.manager.max_nodes = budget
            self._drop_prefix(bdds, "a_")
            self._hit("global_bdds")
            bdds.add_network(approx, prefix="a_")
            self._pair = {
                "bdds": bdds,
                "original": original,
                "orig_version": original.version,
                "approx": approx,
                "approx_version": approx.version,
                "budget": budget,
            }
            return bdds
        self._miss("global_bdds")
        bdds = GlobalBdds(dfs_input_order(original), max_nodes=budget)
        bdds.manager.guard = self.guard
        try:
            bdds.add_network(original, prefix="o_")
        except BddOverflowError:
            if self.enabled and budget is not None:
                self._o_fail = {"original": original,
                                "version": original.version,
                                "budget": budget}
            raise
        if self.enabled:
            self._o_entry = {
                "bdds": bdds,
                "mark": bdds.manager.mark(),
                "original": original,
                "orig_version": original.version,
                "o_created": bdds.manager.num_nodes,
            }
        bdds.add_network(approx, prefix="a_")
        if self.enabled:
            self._pair = {
                "bdds": bdds,
                "original": original,
                "orig_version": original.version,
                "approx": approx,
                "approx_version": approx.version,
                "budget": budget,
            }
        return bdds

    @staticmethod
    def _drop_prefix(bdds: GlobalBdds, prefix: str) -> None:
        for key in [k for k in bdds.functions if k.startswith(prefix)]:
            del bdds.functions[key]

    # ------------------------------------------------------------------
    # Dataflow analyses (repro.analyze)
    # ------------------------------------------------------------------
    def analyses(self, network: Network):
        """Version-refreshed :class:`~repro.analyze.NetworkAnalyses`.

        One bundle per live network object; a mutated network gets its
        fixpoint solutions updated incrementally rather than re-solved.
        Bundles carry no verdicts of their own (the analyses are pure
        functions of the network content), so sharing them cannot
        change any downstream result — only skip recomputation.
        """
        from repro.analyze import NetworkAnalyses
        obj = id(network)
        entry = self._analyses.get(obj)
        if self.enabled and entry is not None and entry[0] is network:
            bundle = entry[1]
            bundle.refresh()
            return bundle
        bundle = NetworkAnalyses(network)
        if self.enabled:
            self._analyses[obj] = (network, bundle)
        return bundle

    # ------------------------------------------------------------------
    # Simulators / probabilities / switching activity
    # ------------------------------------------------------------------
    def simulator(self, circuit):
        """Version-aware compiled simulator (delegates to the global
        :func:`~repro.sim.get_simulator` cache)."""
        return get_simulator(circuit)

    def _content_token(self, circuit) -> str:
        """Digest of the circuit's content, memoized per live object.

        Keying memos on this token (instead of object identity) is what
        makes re-loaded-but-equal circuits warm cache hits; the
        per-object ``(circuit, version)`` memo keeps the serialization
        cost to one pass per mutation, not one per lookup.
        """
        obj = id(circuit)
        memo = self._tokens.get(obj)
        version = getattr(circuit, "version", None)
        if memo is not None and memo[0] is circuit and memo[1] == version:
            return memo[2]
        token = hashlib.sha256(
            _serialize_circuit(circuit).encode()).hexdigest()
        self._tokens[obj] = (circuit, version, token)
        return token

    def probabilities(self, network, n_words: int = 32,
                      seed: int = 2008) -> dict[str, float]:
        """Memoized :func:`~repro.sim.signal_probabilities`."""
        key = (self._content_token(network), n_words, seed)
        cached = self._probs.get(key)
        if self.enabled and cached is not None:
            self._hit("probabilities")
            return cached
        self._miss("probabilities")
        probs = signal_probabilities(network, n_words=n_words, seed=seed)
        if self.enabled:
            self._probs[key] = probs
        return probs

    def switching(self, circuit, n_words: int = 16, seed: int = 2008,
                  weighted: bool = False) -> float:
        """Memoized :func:`~repro.sim.switching_activity`."""
        key = (self._content_token(circuit), n_words, seed, weighted)
        cached = self._switching.get(key)
        if self.enabled and cached is not None:
            self._hit("switching")
            return cached
        self._miss("switching")
        value = switching_activity(circuit, n_words=n_words, seed=seed,
                                   weighted=weighted)
        if self.enabled:
            self._switching[key] = value
        return value
