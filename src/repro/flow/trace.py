"""Structured per-pass instrumentation for flow runs.

Every pass executed by a :class:`~repro.flow.passes.PassManager` leaves
one :class:`PassRecord` in a :class:`FlowTrace`: wall time, the
analysis-cache hit/miss counters attributable to the pass, and
pass-specific stats (repair rounds, BDD node counts, campaign sizes).
Traces ride along in ``CedFlowResult.to_dict()``, ``repro.cli ced
--trace`` output, and lab run manifests; :func:`validate_trace` is the
schema check CI runs against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bump when the trace document layout changes incompatibly.
TRACE_SCHEMA = 1

#: Pass outcome values.  ``ok`` means the pass body ran; ``resumed``
#: means its outputs were restored from a checkpoint store.
PASS_STATUSES = ("ok", "resumed")


@dataclass
class PassRecord:
    """Instrumentation of one executed (or resumed) pass."""

    name: str
    status: str = "ok"
    wall_time_s: float = 0.0
    #: Cache activity by artifact kind, e.g.
    #: ``{"global_bdds": {"hits": 2, "misses": 1}}``.
    cache: dict = field(default_factory=dict)
    #: Pass-specific counters (repair rounds, bdd_nodes, runs, ...).
    stats: dict = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(c.get("hits", 0) for c in self.cache.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.get("misses", 0) for c in self.cache.values())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "wall_time_s": float(self.wall_time_s),
            "cache": {kind: {k: int(v) for k, v in counters.items()}
                      for kind, counters in self.cache.items()},
            "stats": _jsonify(self.stats),
        }


@dataclass
class FlowTrace:
    """The ordered pass records of one flow run."""

    passes: list = field(default_factory=list)
    #: Optional resource-governance record
    #: (:meth:`repro.guard.BudgetReport.to_dict`) when the run was
    #: budget-governed: the degradation-ladder rungs, exhausted
    #: resources, skipped work, and injected chaos kinds.
    budget: dict | None = None

    def add(self, record: PassRecord) -> PassRecord:
        self.passes.append(record)
        return record

    def record(self, name: str) -> PassRecord | None:
        for rec in self.passes:
            if rec.name == name:
                return rec
        return None

    @property
    def total_wall_time_s(self) -> float:
        return sum(rec.wall_time_s for rec in self.passes)

    def cache_totals(self) -> dict:
        """Hit/miss counters summed over every pass, by kind."""
        totals: dict = {}
        for rec in self.passes:
            for kind, counters in rec.cache.items():
                slot = totals.setdefault(kind, {"hits": 0, "misses": 0})
                for key, value in counters.items():
                    slot[key] = slot.get(key, 0) + int(value)
        return totals

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "total_wall_time_s": float(self.total_wall_time_s),
            "passes": [rec.to_dict() for rec in self.passes],
            **({"budget": _jsonify(self.budget)}
               if self.budget is not None else {}),
        }


def _jsonify(value):
    """Coerce stats payloads to plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    try:                         # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def validate_trace(doc) -> list[str]:
    """Validate a trace document; returns a list of problems (empty=ok)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"trace is {type(doc).__name__}, expected dict"]
    if doc.get("schema") != TRACE_SCHEMA:
        errors.append(f"trace schema is {doc.get('schema')!r}, "
                      f"expected {TRACE_SCHEMA}")
    passes = doc.get("passes")
    if not isinstance(passes, list) or not passes:
        errors.append("trace has no passes")
        return errors
    if not isinstance(doc.get("total_wall_time_s"), (int, float)):
        errors.append("total_wall_time_s missing or non-numeric")
    for i, rec in enumerate(passes):
        where = f"passes[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where} is not a dict")
            continue
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where} has no name")
        else:
            where = f"pass {name!r}"
        if rec.get("status") not in PASS_STATUSES:
            errors.append(f"{where}: bad status {rec.get('status')!r}")
        wall = rec.get("wall_time_s")
        if not isinstance(wall, (int, float)) or wall < 0:
            errors.append(f"{where}: bad wall_time_s {wall!r}")
        cache = rec.get("cache")
        if not isinstance(cache, dict):
            errors.append(f"{where}: cache is not a dict")
        else:
            for kind, counters in cache.items():
                if not isinstance(counters, dict) or not all(
                        isinstance(v, int) and v >= 0
                        for v in counters.values()):
                    errors.append(f"{where}: bad cache entry {kind!r}")
        if not isinstance(rec.get("stats"), dict):
            errors.append(f"{where}: stats is not a dict")
    if "budget" in doc:
        # Imported lazily: repro.guard is stdlib-only, but keeping the
        # trace schema importable without it costs nothing.
        from repro.guard import validate_budget_report
        errors.extend(f"budget: {problem}" for problem
                      in validate_budget_report(doc["budget"]))
    return errors
