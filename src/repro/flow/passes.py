"""The pass pipeline: ``Pass`` protocol, ``FlowContext``, ``PassManager``.

A flow is a list of named passes with declared artifact dependencies
(``requires``/``provides``) run over a shared :class:`FlowContext`.
The manager checks the declarations up front (a pass can only read
artifacts some earlier pass provides), times every pass, attributes
analysis-cache hit/miss counters to it, and — when given a checkpoint
store — persists each pass's declared checkpointable outputs under a
content-addressed key chain so a killed run resumes mid-pipeline.

The checkpoint key of pass *i* hashes the flow token (circuit content +
canonical parameters), the pass name, a fingerprint of the pass class's
source, and the key of pass *i-1* — a Merkle-style chain, so editing an
upstream pass (or its inputs) invalidates every downstream checkpoint.
Any object with ``has``/``get``/``put`` works as a store; sweeps pass
the lab's content-addressed :class:`~repro.lab.cache.ArtifactStore`.
"""

from __future__ import annotations

import hashlib
import inspect
import time

from .analysis import AnalysisContext
from .trace import FlowTrace, PassRecord

#: Sentinel distinguishing "checkpoint miss" from a stored ``None``.
_MISS = object()

#: Bump to invalidate every flow checkpoint after a change the per-pass
#: source fingerprint cannot see (e.g. an algorithm edit underneath).
CHECKPOINT_SCHEMA = 1


class FlowError(RuntimeError):
    """Mis-declared pipeline (unknown requirement, duplicate provide)."""


class Pass:
    """One named stage of a flow pipeline.

    Subclasses set ``name``, declare the artifact names they read
    (``requires``) and write (``provides``), and implement
    :meth:`run`, returning a dict with exactly the provided artifacts.
    ``checkpoint`` lists the provided artifacts worth persisting; a
    pass is resumable only when it checkpoints everything it provides.
    Pass-specific counters go into ``record.stats`` via the record the
    manager hands to :meth:`run`.
    """

    name: str = "?"
    requires: tuple = ()
    provides: tuple = ()
    checkpoint: tuple = ()

    def run(self, ctx: "FlowContext", record: PassRecord) -> dict:
        raise NotImplementedError

    @property
    def resumable(self) -> bool:
        return bool(self.provides) and \
            set(self.checkpoint) == set(self.provides)


class FlowContext:
    """Shared state the passes of one flow run communicate through."""

    def __init__(self, network, params: dict | None = None,
                 analysis: AnalysisContext | None = None,
                 budget=None):
        self.network = network
        #: Immutable-by-convention run parameters (words, seed, ...).
        self.params = dict(params or {})
        self.analysis = analysis if analysis is not None \
            else AnalysisContext()
        #: Optional :class:`repro.guard.Budget` governing this run;
        #: passes that can degrade gracefully consult it.
        self.budget = budget
        #: Artifacts produced so far, by declared name.
        self.artifacts: dict[str, object] = {}
        self.trace = FlowTrace()

    def __getitem__(self, name: str):
        return self.artifacts[name]

    def __contains__(self, name: str) -> bool:
        return name in self.artifacts


def pass_fingerprint(pass_obj: Pass) -> str:
    """Digest of a pass implementation's identity and source."""
    cls = type(pass_obj)
    ident = f"{cls.__module__}.{cls.__qualname__}"
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):
        source = ""
    payload = f"schema={CHECKPOINT_SCHEMA}\n{ident}\n{source}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class PassManager:
    """Runs a pass list over a context, tracing and checkpointing."""

    def __init__(self, passes, store=None, token: str | None = None,
                 on_record=None):
        self.passes = list(passes)
        #: Checkpoint store (``has``/``get``/``put``), or None.
        self.store = store if token is not None else None
        #: Content token of the flow's inputs; chains into every key.
        self.token = token
        #: Called with each completed :class:`PassRecord` right after it
        #: is added to the trace — the live-progress hook the serve
        #: layer streams from.  Observer only: exceptions propagate.
        self.on_record = on_record
        self._check_declarations()

    def _check_declarations(self) -> None:
        provided: set[str] = set()
        for pass_obj in self.passes:
            for req in pass_obj.requires:
                if req not in provided:
                    raise FlowError(
                        f"pass {pass_obj.name!r} requires {req!r}, "
                        "which no earlier pass provides")
            for out in pass_obj.provides:
                if out in provided:
                    raise FlowError(
                        f"pass {pass_obj.name!r} re-provides {out!r}")
                provided.add(out)

    def run(self, ctx: FlowContext) -> FlowTrace:
        self._active_analysis = ctx.analysis
        chain_key = ""
        for pass_obj in self.passes:
            chain_key = self._checkpoint_key(pass_obj, chain_key)
            record = PassRecord(name=pass_obj.name)
            before = ctx.analysis.snapshot()
            start = time.perf_counter()
            outputs = self._load_checkpoint(pass_obj, chain_key)
            if outputs is not _MISS:
                record.status = "resumed"
            else:
                outputs = pass_obj.run(ctx, record)
                missing = set(pass_obj.provides) - set(outputs)
                if missing:
                    raise FlowError(
                        f"pass {pass_obj.name!r} did not provide "
                        f"{sorted(missing)}")
                self._save_checkpoint(pass_obj, chain_key, outputs)
            record.wall_time_s = time.perf_counter() - start
            record.cache = AnalysisContext.delta(
                before, ctx.analysis.snapshot())
            nodes = ctx.analysis.bdd_nodes()
            if nodes is not None:
                record.stats.setdefault("bdd_nodes", nodes)
            ctx.artifacts.update(outputs)
            ctx.trace.add(record)
            if self.on_record is not None:
                self.on_record(record)
        return ctx.trace

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_key(self, pass_obj: Pass, prev_key: str) -> str:
        payload = "\n".join([
            "flow-pass",
            f"schema={CHECKPOINT_SCHEMA}",
            f"token={self.token or ''}",
            f"pass={pass_obj.name}",
            f"code={pass_fingerprint(pass_obj)}",
            f"prev={prev_key}",
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def _load_checkpoint(self, pass_obj: Pass, key: str):
        if self.store is None or not pass_obj.resumable:
            return _MISS
        if not self.store.has(key):
            return _MISS
        outputs = self.store.get(key, _MISS)
        if not isinstance(outputs, dict) or \
                set(outputs) != set(pass_obj.provides):
            return _MISS
        # A resumed pass is a cache hit for the warm-run accounting:
        # the work was served from the store instead of recomputed.
        self._count_checkpoint("hits")
        return outputs

    def _save_checkpoint(self, pass_obj: Pass, key: str,
                         outputs: dict) -> None:
        if self.store is None or not pass_obj.resumable:
            return
        self._count_checkpoint("misses")
        self.store.put(key, dict(outputs),
                       meta={"pass": pass_obj.name,
                             "token": self.token or ""})

    def _count_checkpoint(self, bucket: str) -> None:
        analysis = getattr(self, "_active_analysis", None)
        if analysis is not None:
            analysis.stats["checkpoint"][bucket] += 1


def flow_token(content: str, params: dict) -> str:
    """Content token of a flow's inputs: circuit text + parameters."""
    import json
    canonical = json.dumps(params, sort_keys=True, default=str)
    payload = f"flow-token\n{canonical}\n{content}"
    return hashlib.sha256(payload.encode()).hexdigest()
