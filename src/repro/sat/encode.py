"""Tseitin encoding of networks into CNF.

Every signal becomes one SAT variable; a node's SOP becomes the
standard cube/disjunction encoding (one auxiliary variable per
multi-literal cube).  Two networks encoded into the same
:class:`NetworkEncoder` share their primary-input variables, which is
exactly the miter construction the implication check needs:

    1-approximation (G => F) holds  iff  SAT(G & !F) is UNSAT.
"""

from __future__ import annotations

from repro.network import Network

from .solver import SatSolver, require_decided


class NetworkEncoder:
    """Encodes one or more networks over shared PIs into one solver."""

    def __init__(self, inputs: list[str]):
        self.solver = SatSolver()
        self.variables: dict[str, int] = {}
        for pi in inputs:
            self.variables[pi] = self.solver.new_var()
        self._inputs = list(inputs)

    def add_network(self, network: Network, prefix: str = "") -> None:
        """Encode every node of ``network`` (signals ``prefix+name``)."""
        for pi in network.inputs:
            if pi not in self.variables:
                raise ValueError(f"input {pi!r} not in shared PI space")
        solver = self.solver
        input_set = self._input_set()
        for name in network.topological_order():
            node = network.nodes[name]
            out = solver.new_var()
            self.variables[prefix + name] = out
            fanin_vars = [self.variables[f] if f in input_set
                          else self.variables[prefix + f]
                          for f in node.fanins]
            constant = node.constant_value()
            if constant is not None and not node.fanins:
                solver.add_clause([out] if constant else [-out])
                continue
            cube_vars: list[int] = []
            for cube in node.cover.cubes:
                lits = []
                for i in range(cube.n):
                    literal = cube.literal(i)
                    if literal == "1":
                        lits.append(fanin_vars[i])
                    elif literal == "0":
                        lits.append(-fanin_vars[i])
                if not lits:
                    # Tautological cube: the node is constant 1.
                    solver.add_clause([out])
                    cube_vars = []
                    break
                if len(lits) == 1:
                    cube_vars.append(lits[0])
                    continue
                aux = solver.new_var()
                # aux <-> AND(lits)
                for lit in lits:
                    solver.add_clause([-aux, lit])
                solver.add_clause([aux] + [-lit for lit in lits])
                cube_vars.append(aux)
            else:
                # out <-> OR(cube_vars)
                if not cube_vars:
                    solver.add_clause([-out])  # empty SOP: constant 0
                    continue
                for cv in cube_vars:
                    solver.add_clause([out, -cv])
                solver.add_clause([-out] + cube_vars)

    def _input_set(self) -> set[str]:
        return set(self._inputs)

    def var(self, signal: str) -> int:
        return self.variables[signal]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def implication_holds(self, antecedent: str, consequent: str,
                          max_conflicts: int | None = None,
                          deadline: float | None = None
                          ) -> bool | None:
        """antecedent => consequent, checked by SAT.

        Returns True/False, or None — *unknown* — when the conflict
        budget or deadline runs out (tri-state; see
        :mod:`repro.sat.solver`).
        """
        result = self.solver.solve(
            assumptions=[self.var(antecedent), -self.var(consequent)],
            max_conflicts=max_conflicts, deadline=deadline)
        if result is None:
            return None
        return not result

    def equivalent(self, a: str, b: str,
                   max_conflicts: int | None = None,
                   deadline: float | None = None) -> bool | None:
        forward = self.implication_holds(a, b, max_conflicts, deadline)
        if forward is None or forward is False:
            return forward
        return self.implication_holds(b, a, max_conflicts, deadline)

    def counterexample(self, antecedent: str, consequent: str,
                       max_conflicts: int | None = None,
                       deadline: float | None = None
                       ) -> dict[str, bool] | None:
        """An input assignment violating the implication, or None.

        None means *no counterexample exists* — a budget-exhausted
        (unknown) solve raises
        :class:`~repro.sat.solver.SatBudgetExhausted` instead of being
        conflated with UNSAT.
        """
        result = require_decided(
            self.solver.solve(
                assumptions=[self.var(antecedent),
                             -self.var(consequent)],
                max_conflicts=max_conflicts, deadline=deadline),
            f"counterexample search {antecedent} => {consequent}")
        if not result:
            return None
        return {pi: bool(self.solver.value(self.variables[pi]))
                for pi in self._inputs}
