"""A CDCL SAT solver.

The paper notes the output-correctness check of the iterative algorithm
"can be done very efficiently using SAT algorithms"; this module is
that backend.  It is a compact conflict-driven clause-learning solver:

* two-watched-literal propagation;
* first-UIP conflict analysis with clause learning;
* VSIDS-style activity decay and phase saving;
* geometric restarts;
* incremental solving under assumptions (no clause copying between
  queries).

Variables are positive integers ``1..n``; literals are signed ints
(``-v`` is the negation of ``v``), CNF is a list of literal lists.

Tri-state contract
------------------
:meth:`SatSolver.solve` returns ``True`` (SAT), ``False`` (UNSAT under
the given assumptions), or ``None`` — *unknown*, because the
``max_conflicts`` budget or the ``deadline`` ran out.  ``None`` is not
a verdict: callers at soundness-critical sites (an implication check
whose "holds" answer certifies correctness) must never collapse it into
either boolean.  Use :func:`require_decided` to turn an unknown into a
:class:`SatBudgetExhausted` exception at such sites, so exhaustion
degrades explicitly (e.g. to the conformance rung of the flow's
degradation ladder) instead of silently accepting.
"""

from __future__ import annotations

import time


class SatBudgetExhausted(RuntimeError):
    """A soundness-critical SAT query came back *unknown*.

    Raised by :func:`require_decided` when a solve returned ``None``
    (conflict budget or deadline exhausted) at a site that must not
    treat unknown as either SAT or UNSAT.
    """


def require_decided(result: "bool | None",
                    what: str = "SAT query") -> bool:
    """Collapse-proof guard for tri-state solve results.

    Returns the boolean verdict, or raises
    :class:`SatBudgetExhausted` when the result is ``None`` — the
    raise-on-unknown discipline for sites where mistaking *unknown*
    for a verdict would be unsound.
    """
    if result is None:
        raise SatBudgetExhausted(
            f"{what} undecided: SAT conflict budget or deadline "
            "exhausted")
    return result


class SatSolver:
    """Conflict-driven SAT solver over integer literals."""

    def __init__(self):
        self.num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._assign: list[int] = [0]          # var -> -1/0/+1 (0 unset)
        self._level: list[int] = [0]
        self._reason: list[int | None] = [None]  # clause index
        self._phase: list[int] = [0]           # saved phase per var
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unsat = False

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(-1)
        self._activity.append(0.0)
        return self.num_vars

    def add_clause(self, literals: list[int]) -> bool:
        """Add a clause; returns False if it makes the formula UNSAT.

        Must be called before solving or between solve calls at
        decision level 0.
        """
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            var = abs(lit)
            if var == 0 or var > self.num_vars:
                raise ValueError(f"unknown variable in literal {lit}")
            if -lit in seen:
                return True  # tautological clause: ignore
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self._level[var] == 0:
                return True  # already satisfied at top level
            if value == -1 and self._level[var] == 0:
                continue     # falsified at top level: drop literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._unsat = True
            return False
        if len(clause) == 1:
            if self._enqueue(clause[0], None) and \
                    self._propagate() is None:
                return True
            self._unsat = True
            return False
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        return True

    def _watch(self, lit: int, index: int) -> None:
        self._watches.setdefault(-lit, []).append(index)

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        if self._value(lit) == -1:
            return False
        if self._value(lit) == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            watch_list = self._watches.get(lit, [])
            kept: list[int] = []
            i = 0
            while i < len(watch_list):
                index = watch_list[i]
                i += 1
                clause = self._clauses[index]
                # Normalize: watched literals are clause[0], clause[1].
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == 1:
                    kept.append(index)
                    continue
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != -1:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watch(clause[1], index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(index)
                if not self._enqueue(clause[0], index):
                    kept.extend(watch_list[i:])
                    self._watches[lit] = kept
                    return clause
            self._watches[lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learnt: list[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        reason_clause = conflict
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        while True:
            for q in reason_clause:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            reason_index = self._reason[var]
            reason_clause = self._clauses[reason_index]
        back_level = 0
        if len(learnt) > 1:
            back_level = max(self._level[abs(q)] for q in learnt[1:])
        return learnt, back_level

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _backtrack(self, level: int) -> None:
        while len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                lit = self._trail.pop()
                var = abs(lit)
                self._phase[var] = self._assign[var]
                self._assign[var] = 0
                self._reason[var] = None
        self._queue_head = min(self._queue_head, len(self._trail))

    def _decide(self) -> int | None:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == 0 and \
                    self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var is None:
            return None
        return best_var if self._phase[best_var] >= 0 else -best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[int] = (),
              max_conflicts: int | None = None,
              deadline: float | None = None) -> bool | None:
        """Solve under assumptions.

        Returns True (SAT), False (UNSAT under these assumptions), or
        None — *unknown* — when ``max_conflicts`` is exhausted or the
        ``deadline`` (an absolute ``time.monotonic()`` timestamp)
        passes.  None must never be collapsed into either verdict at a
        soundness-critical site; see :func:`require_decided` and the
        module docstring for the tri-state contract.
        """
        if self._unsat:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        restart_limit = 128
        conflicts_here = 0
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self._backtrack(0)
                return None
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if max_conflicts is not None and \
                        conflicts_here > max_conflicts:
                    self._backtrack(0)
                    return None
                if len(self._trail_lim) <= len(assumptions):
                    # Conflict within the assumption prefix: UNSAT.
                    self._backtrack(0)
                    return False
                learnt, back_level = self._analyze(conflict)
                back_level = max(back_level, len(assumptions))
                self._backtrack(back_level)
                self._var_inc *= 1.05
                if len(learnt) == 1:
                    self._backtrack(0)
                    if not self._enqueue(learnt[0], None) or \
                            self._propagate() is not None:
                        return False
                    if not self._replay_assumptions(assumptions):
                        return False
                else:
                    index = len(self._clauses)
                    self._clauses.append(learnt)
                    self._watch(learnt[0], index)
                    self._watch(learnt[1], index)
                    self._enqueue(learnt[0], index)
                if conflicts_here % restart_limit == 0:
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                    if not self._replay_assumptions(assumptions):
                        return False
                continue
            if len(self._trail_lim) < len(assumptions):
                lit = assumptions[len(self._trail_lim)]
                if self._value(lit) == -1:
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if not self._enqueue(lit, None):
                    self._backtrack(0)
                    return False
                continue
            decision = self._decide()
            if decision is None:
                return True  # complete assignment
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def _replay_assumptions(self, assumptions: list[int]) -> bool:
        for lit in assumptions:
            if self._value(lit) == -1:
                return False
            if self._value(lit) == 0:
                self._trail_lim.append(len(self._trail))
                if not self._enqueue(lit, None):
                    return False
                if self._propagate() is not None:
                    # Let the main loop analyze it.
                    return True
        return True

    def model(self) -> dict[int, bool]:
        """Satisfying assignment after a True result."""
        return {var: self._assign[var] > 0
                for var in range(1, self.num_vars + 1)
                if self._assign[var] != 0}

    def value(self, var: int) -> bool | None:
        value = self._assign[var]
        return None if value == 0 else value > 0
