"""A CDCL SAT solver and network CNF encoding (the paper's SAT check)."""

from .solver import SatBudgetExhausted, SatSolver, require_decided
from .encode import NetworkEncoder

__all__ = ["NetworkEncoder", "SatBudgetExhausted", "SatSolver",
           "require_decided"]
