"""A CDCL SAT solver and network CNF encoding (the paper's SAT check)."""

from .solver import SatSolver
from .encode import NetworkEncoder

__all__ = ["NetworkEncoder", "SatSolver"]
