"""Picklable evaluation tasks for the evolutionary checker search.

Candidates cross the process (and, on the ``tcp`` backend, machine)
boundary as BLIF text — the repo's native interchange format — so a
search generation is an ordinary :mod:`repro.lab` job grid: cached in
the artifact store, recorded in manifests, resumable after a kill.
"""

from __future__ import annotations

from typing import Any

from repro.ced import build_ced, evaluate_ced, run_ced_flow
from repro.lab.tasks import load_circuit
from repro.network import parse_blif, write_blif
from repro.synth import quick_map

__all__ = ["baseline_task", "evaluate_candidate_task"]


def baseline_task(circuit: str, table: int = 2, words: int = 4,
                  seed: int = 2008) -> dict[str, Any]:
    """The paper-flow checker: the search's seed and acceptance bar.

    Runs the full CED flow (reliability-directed approximate synthesis)
    and returns the approximation as BLIF plus its directions and the
    coverage/area yardsticks every candidate is scored against.
    """
    net = load_circuit(circuit, table)
    flow = run_ced_flow(net, reliability_words=words,
                        coverage_words=words, seed=seed)
    return {
        "blif": write_blif(flow.approx_result.approx),
        "directions": {po: int(d) for po, d
                       in flow.assembly.directions.items()},
        "area": int(flow.approx_mapped.gate_count),
        "coverage": float(flow.coverage.coverage),
        "false_alarms": int(flow.coverage.false_alarms),
        "golden_invalid": int(flow.coverage.golden_invalid),
        "max_coverage": float(100 * flow.reliability.max_ced_coverage),
    }


def evaluate_candidate_task(circuit: str, blif: str,
                            directions: dict[str, int],
                            table: int = 2, words: int = 4,
                            seed: int = 2008) -> dict[str, Any]:
    """Score one candidate check-symbol generator.

    Maps the candidate, assembles the CED architecture against the
    original circuit, and fault-simulates it — the identical
    measurement the paper flow gets, so candidate and baseline numbers
    are directly comparable.  ``golden_invalid > 0`` means the mutant
    broke the one-sided approximation contract (the checker would
    need a third symbol value); the fitness function disqualifies it.
    """
    net = load_circuit(circuit, table)
    original_mapped = quick_map(net)
    approx = parse_blif(blif)
    approx_mapped = quick_map(approx)
    directions = {po: int(d) for po, d in directions.items()}
    assembly = build_ced(original_mapped, approx_mapped, directions)
    result = evaluate_ced(assembly, n_words=words, seed=seed)
    return {
        "area": int(approx_mapped.gate_count),
        "coverage": float(result.coverage),
        "false_alarms": int(result.false_alarms),
        "golden_invalid": int(result.golden_invalid),
    }
