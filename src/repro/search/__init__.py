"""repro.search — evolutionary search over checker candidates.

Searches the neighborhood of the paper-flow approximate checker for
better coverage/area trade-offs, one :mod:`repro.lab` job grid per
generation (so it runs on any execution backend, local or
distributed, with caching and manifests for free).  Elitism seeds the
population with the paper's checker, so the search never returns
anything worse than the flow it starts from.
"""

from .evolve import (Candidate, SearchConfig,  # noqa: F401
                     SearchResult, run_search)
from .mutate import MUTATION_OPS, mutate_network  # noqa: F401
from .tasks import baseline_task, evaluate_candidate_task  # noqa: F401

__all__ = [
    "SearchConfig", "SearchResult", "Candidate", "run_search",
    "MUTATION_OPS", "mutate_network",
    "baseline_task", "evaluate_candidate_task",
]
