"""Mutation operators for evolutionary checker search.

A candidate is an approximate network (the check-symbol generator of
the CED architecture); mutation perturbs one node's local SOP cover —
the same representation the paper's cube-selection engine optimizes —
by one of three moves:

* ``cube_drop`` — remove one cube (shrinks the ON-set; pushes toward
  0-approximation);
* ``cube_add`` — add one random cube over the node's fanins (grows the
  ON-set; pushes toward 1-approximation);
* ``literal_flip`` — cycle one literal of one cube through
  ``0 -> 1 -> - -> 0`` (a local reshaping move).

Moves are blind to the approximation directions: a mutant may violate
the one-sided error contract, in which case fault-injection evaluation
reports ``golden_invalid > 0`` and the fitness function disqualifies
it.  Cheap generation + strict evaluation beats building a
direction-aware mutator, and matches how the paper treats candidate
covers (generate, then check).
"""

from __future__ import annotations

import random

from repro.cubes import Cover
from repro.network import Network

__all__ = ["MUTATION_OPS", "mutate_network", "mutable_nodes"]

MUTATION_OPS = ("cube_drop", "cube_add", "literal_flip")

_FLIP = {"0": "1", "1": "-", "-": "0"}


def mutable_nodes(net: Network) -> list[str]:
    """Internal nodes a mutation can act on, in deterministic order."""
    return sorted(name for name, node in net.nodes.items()
                  if len(node.fanins) > 0)


def _random_cube(n: int, rng: random.Random) -> str:
    """A random cube string biased toward a few care literals."""
    row = ["-"] * n
    cares = rng.randint(1, max(1, min(n, 3)))
    for var in rng.sample(range(n), cares):
        row[var] = rng.choice("01")
    return "".join(row)


def _mutate_rows(rows: list[str], n: int, rng: random.Random
                 ) -> "tuple[list[str], str]":
    ops = list(MUTATION_OPS)
    if not rows:                       # constant-0 node: only growth
        ops = ["cube_add"]
    op = rng.choice(ops)
    rows = list(rows)
    if op == "cube_drop":
        del rows[rng.randrange(len(rows))]
    elif op == "cube_add":
        rows.append(_random_cube(n, rng))
    else:
        index = rng.randrange(len(rows))
        var = rng.randrange(n)
        row = rows[index]
        rows[index] = row[:var] + _FLIP[row[var]] + row[var + 1:]
    return rows, op


def mutate_network(net: Network, rng: random.Random,
                   moves: int = 1) -> "tuple[Network, list[str]]":
    """``moves`` random mutations on a copy of ``net``.

    Returns the mutated copy and a human-readable move log
    (``["cube_add@n3", ...]``) for manifests and search history.
    Deterministic given the ``rng`` state.
    """
    mutant = net.copy()
    log: list[str] = []
    candidates = mutable_nodes(mutant)
    if not candidates:
        return mutant, log
    for _ in range(max(1, moves)):
        name = rng.choice(candidates)
        node = mutant.nodes[name]
        n = len(node.fanins)
        rows, op = _mutate_rows(node.cover.to_strings(), n, rng)
        if rows:
            cover = Cover.from_strings(rows)
        else:
            cover = Cover.zero(n)
        mutant.replace_cover(name, cover)
        log.append(f"{op}@{name}")
    return mutant, log
