"""Budget-governed, resumable (mu+lambda) evolutionary checker search.

The paper's flow synthesizes one approximate check-symbol generator
per circuit from reliability analysis.  This module treats that
checker as the seed of a population and searches its neighborhood for
strictly better trade-offs: every generation mutates the fittest
candidates (:mod:`repro.search.mutate`), evaluates the offspring as a
:mod:`repro.lab` job grid on any execution backend (``local``,
``tcp``, ``workqueue``), and keeps the top ``population`` of parents +
children (elitism: the paper-flow baseline can only ever be improved
upon, never lost, so the search result is always at least as good as
the paper's checker).

Determinism and resumability come from the lab's own machinery: child
``i`` of generation ``g`` mutates with the derived seed
``derive_seed(seed, "g{g}/c{i}")``, candidate evaluations are
content-addressed in the artifact store (re-running a generation after
a SIGTERM hits cache), and the search state — population, history,
generation counter — is written atomically per generation to a JSON
file keyed by the config digest, so invoking the same search again
continues where it stopped.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.lab import ArtifactStore, Job, JobGraph, LabRunner, derive_seed
from repro.network import parse_blif, write_blif

from .mutate import mutate_network
from .tasks import baseline_task, evaluate_candidate_task

__all__ = ["SearchConfig", "SearchResult", "Candidate", "run_search"]


@dataclass
class SearchConfig:
    """Knobs of one search; the digest keys its resumable state."""

    circuit: str = "tiny"
    table: int = 2
    words: int = 2
    seed: int = 2008
    generations: int = 4
    population: int = 4          # mu: survivors per generation
    offspring: int = 8           # lambda: mutants per generation
    moves_per_child: int = 1     # mutation moves per offspring
    #: Candidates above baseline area + slack gates are disqualified.
    area_slack: int = 0
    #: Wall-clock budget in seconds; the search stops after the first
    #: generation that exceeds it (state is saved, resume continues).
    budget_s: "float | None" = None
    backend: "str | None" = None
    workers: "int | str | None" = None
    state_dir: "str | Path" = ".search_state"
    cache_dir: "str | Path | None" = ".lab_cache"
    results_dir: "str | Path | None" = "results"

    def digest(self) -> str:
        """Identity of the search trajectory (resume key).

        Budget and execution knobs (backend, workers, directories) are
        excluded: they change how fast the search runs, never which
        candidates it visits.
        """
        payload = {k: v for k, v in asdict(self).items()
                   if k in ("circuit", "table", "words", "seed",
                            "generations", "population", "offspring",
                            "moves_per_child", "area_slack")}
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass
class Candidate:
    """One member of the population with its measured record."""

    blif: str
    origin: str                  # "baseline" or e.g. "g2/c5:cube_add@n3"
    area: int = 0
    coverage: float = 0.0
    false_alarms: int = 0
    golden_invalid: int = 0

    def record(self) -> dict[str, Any]:
        doc = asdict(self)
        doc.pop("blif")
        return doc


@dataclass
class SearchResult:
    """Outcome of :func:`run_search`."""

    config: SearchConfig
    best: Candidate
    baseline: Candidate
    generations_run: int
    wall_time_s: float
    history: list[dict[str, Any]] = field(default_factory=list)
    state_path: "Path | None" = None

    @property
    def improved(self) -> bool:
        return (self.best.coverage, -self.best.area) > \
            (self.baseline.coverage, -self.baseline.area)

    def summary(self) -> dict[str, Any]:
        return {
            "circuit": self.config.circuit,
            "generations_run": self.generations_run,
            "baseline": self.baseline.record(),
            "best": self.best.record(),
            "best_origin": self.best.origin,
            "improved": self.improved,
            "wall_time_s": round(self.wall_time_s, 3),
        }


def _fitness(candidate: Candidate, baseline_area: int, slack: int
             ) -> tuple:
    """Sort key, descending: qualified > coverage > smaller area.

    A candidate qualifies only if it raises no false alarms, respects
    the one-sided approximation contract (``golden_invalid == 0``),
    and fits the area budget.  Disqualified candidates still rank
    among themselves (by coverage) so a population of misfits keeps
    evolutionary pressure, but they can never displace a qualified
    one.
    """
    qualified = (candidate.false_alarms == 0
                 and candidate.golden_invalid == 0
                 and candidate.area <= baseline_area + slack)
    return (1 if qualified else 0, candidate.coverage, -candidate.area)


def _state_path(config: SearchConfig) -> Path:
    return Path(config.state_dir) / f"search-{config.digest()}.json"


def _save_state(path: Path, doc: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _load_state(path: Path) -> "dict[str, Any] | None":
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _runner(config: SearchConfig, log) -> LabRunner:
    cache = ArtifactStore(config.cache_dir) \
        if config.cache_dir is not None else None
    return LabRunner(workers=config.workers, backend=config.backend,
                     cache=cache, results_dir=config.results_dir,
                     log=log)


def run_search(config: SearchConfig, *, log=None) -> SearchResult:
    """Run (or resume) the evolutionary search ``config`` describes."""
    start = time.perf_counter()
    state_path = _state_path(config)
    state = _load_state(state_path)

    def emit(message: str) -> None:
        if log is not None:
            log(message)

    # -- generation 0: the paper-flow baseline seeds the population ----
    if state is None:
        runner = _runner(config, log)
        run = runner.run(JobGraph([
            Job(name="baseline", fn=baseline_task,
                params={"circuit": config.circuit,
                        "table": config.table,
                        "words": config.words,
                        "seed": config.seed}),
        ], root_seed=config.seed), run_id=None)
        base = run.value("baseline")
        baseline = Candidate(blif=base["blif"], origin="baseline",
                             area=int(base["area"]),
                             coverage=float(base["coverage"]),
                             false_alarms=int(base["false_alarms"]),
                             golden_invalid=int(base["golden_invalid"]))
        state = {
            "digest": config.digest(),
            "generation": 0,
            "directions": base["directions"],
            "baseline": asdict(baseline),
            "population": [asdict(baseline)],
            "history": [{"generation": 0, "best": baseline.record(),
                         "origin": "baseline"}],
        }
        _save_state(state_path, state)
        emit(f"[search] baseline: coverage="
             f"{baseline.coverage:.2f}% area={baseline.area}")

    baseline = Candidate(**state["baseline"])
    directions = {po: int(d)
                  for po, d in state["directions"].items()}
    population = [Candidate(**doc) for doc in state["population"]]
    generation = int(state["generation"])
    history: list[dict[str, Any]] = list(state["history"])

    while generation < config.generations:
        if config.budget_s is not None \
                and time.perf_counter() - start >= config.budget_s:
            emit(f"[search] budget exhausted after generation "
                 f"{generation}; state saved for resume")
            break
        generation += 1
        # -- breed: child i mutates parent i mod mu, derived seed ------
        jobs: list[Job] = []
        origins: dict[str, str] = {}
        blifs: dict[str, str] = {}
        for index in range(config.offspring):
            parent = population[index % len(population)]
            child_seed = derive_seed(config.seed,
                                     f"g{generation}/c{index}")
            rng = random.Random(child_seed)
            mutant, moves = mutate_network(parse_blif(parent.blif),
                                           rng,
                                           config.moves_per_child)
            name = f"g{generation}-c{index}"
            blif = write_blif(mutant)
            blifs[name] = blif
            origins[name] = (f"g{generation}/c{index}:"
                             f"{'+'.join(moves) or 'noop'}")
            jobs.append(Job(
                name=name, fn=evaluate_candidate_task,
                params={"circuit": config.circuit, "blif": blif,
                        "directions": directions,
                        "table": config.table,
                        "words": config.words,
                        "seed": config.seed}))
        # -- evaluate: one lab grid per generation ---------------------
        runner = _runner(config, log)
        run = runner.run(JobGraph(jobs, root_seed=derive_seed(
            config.seed, f"g{generation}")),
            run_id=f"search-{config.digest()}-g{generation}")
        children: list[Candidate] = []
        for name, blif in blifs.items():
            result = run.results.get(name)
            if result is None or not result.ok:
                continue             # failed evaluation: not a member
            doc = result.value
            children.append(Candidate(
                blif=blif, origin=origins[name],
                area=int(doc["area"]),
                coverage=float(doc["coverage"]),
                false_alarms=int(doc["false_alarms"]),
                golden_invalid=int(doc["golden_invalid"])))
        # -- select: (mu + lambda) with elitism ------------------------
        pool = population + children
        pool.sort(key=lambda c: _fitness(c, baseline.area,
                                         config.area_slack),
                  reverse=True)
        population = pool[:config.population]
        best = population[0]
        history.append({"generation": generation,
                        "best": best.record(),
                        "origin": best.origin,
                        "evaluated": len(children)})
        emit(f"[search] generation {generation}: best "
             f"coverage={best.coverage:.2f}% area={best.area} "
             f"({best.origin})")
        state = {
            "digest": config.digest(),
            "generation": generation,
            "directions": directions,
            "baseline": asdict(baseline),
            "population": [asdict(c) for c in population],
            "history": history,
        }
        _save_state(state_path, state)

    return SearchResult(
        config=config, best=population[0], baseline=baseline,
        generations_run=generation,
        wall_time_s=time.perf_counter() - start,
        history=history, state_path=state_path)
