"""CED coverage evaluation by fault injection.

Reproduces the paper's measurement: random single stuck-at faults in the
original circuit's gates against random input vectors; CED coverage is
the fraction of runs with an erroneous primary output on which the CED
logic flags an invalid codeword (the consolidated two-rail pair becomes
non-complementary).

The default campaign shares one vector block and one golden simulation
across all faults and evaluates faults in batches on the compiled tape;
``vector_mode="per-fault"`` restores the seed engine's fresh-vectors-
per-fault sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import (DEFAULT_BATCH, WORD_BITS, Fault, batched,
                       get_simulator, popcount)

from .architecture import CedAssembly


@dataclass
class CoverageResult:
    """Outcome of a CED fault-injection campaign."""

    runs: int
    error_runs: int
    detected_error_runs: int
    detected_runs: int          # all detections, incl. pre-masking ones
    false_alarms: int           # detections with no output error
    #: Vectors on which the fault-free CED already reported an invalid
    #: codeword.  Zero whenever the approximate circuit is a correct
    #: approximation (always, under BDD checking); may be non-zero for
    #: statistically checked circuits.  Such vectors are excluded from
    #: detection accounting.
    golden_invalid: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of runs with an output error (percent)."""
        if self.error_runs == 0:
            return 0.0
        return 100.0 * self.detected_error_runs / self.error_runs

    @property
    def error_rate(self) -> float:
        return self.error_runs / self.runs if self.runs else 0.0


def evaluate_ced(assembly: CedAssembly, n_words: int = 8,
                 seed: int = 2008,
                 faults: list[Fault] | None = None,
                 vector_mode: str = "shared",
                 batch_size: int = DEFAULT_BATCH,
                 ctx=None) -> CoverageResult:
    """Fault-simulate a CED assembly and measure coverage.

    Faults default to all single stuck-at faults on the original
    circuit's gates (the paper's model); checker and check-symbol
    faults are excluded from coverage accounting, as in the paper.
    ``ctx`` (an :class:`~repro.flow.AnalysisContext`) shares the
    compiled simulator with the rest of the flow.
    """
    sim = (ctx.simulator if ctx is not None
           else get_simulator)(assembly.netlist)
    if faults is None:
        faults = [Fault(site, v) for site in assembly.fault_sites
                  for v in (0, 1)]
    po_indices = [sim.index[assembly.netlist.po_signals[po]]
                  for po in assembly.original.outputs]
    e0 = sim.index[assembly.error_pair[0]]
    e1 = sim.index[assembly.error_pair[1]]
    rng = np.random.default_rng(seed)

    runs = error_runs = detected_error = detected_all = false_alarms = 0
    golden_invalid = 0
    if vector_mode == "shared":
        golden = sim.run(sim.random_inputs(rng, n_words))
        # Fault-free CED must report a valid (complementary) codeword on
        # every vector; vectors where it does not (possible only for
        # statistically checked approximations) are excluded.  The block
        # is shared, so the per-fault exclusion count is uniform.
        valid = golden[e0] ^ golden[e1]
        golden_invalid = popcount(~valid) * len(faults)
        golden_po = golden[po_indices]
        runs = len(faults) * n_words * WORD_BITS
        for batch in batched(faults, sim, batch_size):
            scratch = sim.run_stuck_batch(golden, batch)
            diff = scratch[po_indices] ^ golden_po[:, None, :]
            error_mask = np.bitwise_or.reduce(diff, axis=0) & valid
            detect_mask = ~(scratch[e0] ^ scratch[e1]) & valid
            error_runs += popcount(error_mask)
            detected_error += popcount(error_mask & detect_mask)
            detected_all += popcount(detect_mask)
            false_alarms += popcount(detect_mask & ~error_mask)
    elif vector_mode == "per-fault":
        for fault in faults:
            pi_words = sim.random_inputs(rng, n_words)
            golden = sim.run(pi_words)
            valid = golden[e0] ^ golden[e1]
            golden_invalid += popcount(~valid)
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            runs += n_words * WORD_BITS

            error_mask = np.zeros(n_words, dtype=np.uint64)
            for idx in po_indices:
                error_mask |= golden[idx] ^ overlay.get(idx, golden[idx])
            error_mask &= valid
            f0 = overlay.get(e0, golden[e0])
            f1 = overlay.get(e1, golden[e1])
            detect_mask = ~(f0 ^ f1) & valid  # equal rails = invalid

            error_runs += popcount(error_mask)
            detected_error += popcount(error_mask & detect_mask)
            detected_all += popcount(detect_mask)
            false_alarms += popcount(detect_mask & ~error_mask)
    else:
        raise ValueError(f"unknown vector_mode {vector_mode!r}; "
                         "expected 'shared' or 'per-fault'")
    return CoverageResult(
        runs=runs,
        error_runs=error_runs,
        detected_error_runs=detected_error,
        detected_runs=detected_all,
        false_alarms=false_alarms,
        golden_invalid=golden_invalid)
