"""CED coverage evaluation by fault injection.

Reproduces the paper's measurement: random single stuck-at faults in the
original circuit's gates against random input vectors; CED coverage is
the fraction of runs with an erroneous primary output on which the CED
logic flags an invalid codeword (the consolidated two-rail pair becomes
non-complementary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import WORD_BITS, BitSimulator, Fault, popcount

from .architecture import CedAssembly


@dataclass
class CoverageResult:
    """Outcome of a CED fault-injection campaign."""

    runs: int
    error_runs: int
    detected_error_runs: int
    detected_runs: int          # all detections, incl. pre-masking ones
    false_alarms: int           # detections with no output error
    #: Vectors on which the fault-free CED already reported an invalid
    #: codeword.  Zero whenever the approximate circuit is a correct
    #: approximation (always, under BDD checking); may be non-zero for
    #: statistically checked circuits.  Such vectors are excluded from
    #: detection accounting.
    golden_invalid: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of runs with an output error (percent)."""
        if self.error_runs == 0:
            return 0.0
        return 100.0 * self.detected_error_runs / self.error_runs

    @property
    def error_rate(self) -> float:
        return self.error_runs / self.runs if self.runs else 0.0


def evaluate_ced(assembly: CedAssembly, n_words: int = 8,
                 seed: int = 2008,
                 faults: list[Fault] | None = None) -> CoverageResult:
    """Fault-simulate a CED assembly and measure coverage.

    Faults default to all single stuck-at faults on the original
    circuit's gates (the paper's model); checker and check-symbol
    faults are excluded from coverage accounting, as in the paper.
    """
    sim = BitSimulator(assembly.netlist)
    if faults is None:
        faults = [Fault(site, v) for site in assembly.fault_sites
                  for v in (0, 1)]
    po_indices = [sim.index[assembly.netlist.po_signals[po]]
                  for po in assembly.original.outputs]
    e0 = sim.index[assembly.error_pair[0]]
    e1 = sim.index[assembly.error_pair[1]]
    rng = np.random.default_rng(seed)

    runs = error_runs = detected_error = detected_all = false_alarms = 0
    golden_invalid = 0
    for fault in faults:
        pi_words = sim.random_inputs(rng, n_words)
        golden = sim.run(pi_words)
        # Fault-free CED must report a valid (complementary) codeword on
        # every vector; vectors where it does not (possible only for
        # statistically checked approximations) are excluded.
        valid = golden[e0] ^ golden[e1]
        golden_invalid += popcount(~valid)
        overlay = sim.run_fault(golden, fault.signal, fault.stuck)
        runs += n_words * WORD_BITS

        error_mask = np.zeros(n_words, dtype=np.uint64)
        for idx in po_indices:
            error_mask |= golden[idx] ^ overlay.get(idx, golden[idx])
        error_mask &= valid
        f0 = overlay.get(e0, golden[e0])
        f1 = overlay.get(e1, golden[e1])
        detect_mask = ~(f0 ^ f1) & valid  # equal rails = invalid word

        error_runs += popcount(error_mask)
        detected_error += popcount(error_mask & detect_mask)
        detected_all += popcount(detect_mask)
        false_alarms += popcount(detect_mask & ~error_mask)
    return CoverageResult(
        runs=runs,
        error_runs=error_runs,
        detected_error_runs=detected_error,
        detected_runs=detected_all,
        false_alarms=false_alarms,
        golden_invalid=golden_invalid)
