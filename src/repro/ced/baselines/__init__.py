"""Comparison baselines: partial duplication [10], parity prediction."""

from .parity import build_parity_ced, build_parity_predictor
from .partial_duplication import (DuplicationPlan,
                                  build_partial_duplication,
                                  plan_duplication)

__all__ = [
    "DuplicationPlan", "build_parity_ced", "build_parity_predictor",
    "build_partial_duplication", "plan_duplication",
]
