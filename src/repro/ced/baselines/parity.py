"""Baseline: single-bit parity prediction CED.

A parity predictor computes the XOR of all primary outputs from the
primary inputs in a separate circuit; the checker re-computes the parity
of the actual outputs and compares.  Any error flipping an odd number of
outputs is detected.  The predictor has to re-implement essentially the
whole circuit plus an XOR tree, which is why the paper measures ~106%
area and ~97% power overhead and a 51% longer critical path for it.
"""

from __future__ import annotations

from repro.cubes import Cover
from repro.network import Network, cleanup, embed
from repro.synth import GateLibrary, MappingOptions, technology_map
from repro.synth.mapping import Emitter

from ..architecture import CedAssembly, clone_netlist

PARITY_OUT = "__parity_pred"


def build_parity_predictor(network: Network,
                           name: str = "parity_pred") -> Network:
    """A network computing the XOR of all of ``network``'s outputs."""
    predictor = Network(name)
    for pi in network.inputs:
        predictor.add_input(pi)
    mapping = embed(predictor, _as_closed(network),
                    {pi: pi for pi in network.inputs}, "pp_")
    signals = [mapping[po] for po in network.outputs]
    prev = signals[0]
    for i, signal in enumerate(signals[1:]):
        prev = predictor.add_node(
            f"pp_xor{i}", [prev, signal], Cover.from_strings(["10", "01"]))
    if prev in predictor.inputs:
        prev = predictor.add_node("pp_buf", [prev],
                                  Cover.from_strings(["1"]))
    predictor.add_output(prev)
    cleanup(predictor)
    return predictor


def _as_closed(network: Network) -> Network:
    """A copy whose outputs are all driven by nodes (PIs buffered)."""
    closed = network.copy()
    new_outputs = []
    for i, po in enumerate(closed.outputs):
        if closed.is_input(po):
            name = f"__pobuf{i}"
            closed.add_node(name, [po], Cover.from_strings(["1"]))
            new_outputs.append(name)
        else:
            new_outputs.append(po)
    closed.outputs = new_outputs
    return closed


def build_parity_ced(original_mapped, original_network: Network,
                     library: GateLibrary | None = None,
                     options: MappingOptions | None = None) -> CedAssembly:
    """Assemble the parity-prediction CED circuit.

    The predictor is synthesized from the original network, mapped with
    the same library, and compared against the XOR of the actual
    outputs; the result is exposed through the common
    :class:`CedAssembly` interface (two-rail error pair) so the standard
    coverage evaluation applies.
    """
    library = library or original_mapped.library
    predictor_net = build_parity_predictor(original_network)
    predictor = technology_map(predictor_net, library, options)

    combined = clone_netlist(original_mapped,
                             f"{original_mapped.name}_parity")
    fault_sites = list(original_mapped.gates)
    mapping = combined.merge_from(predictor, "pp_",
                                  {pi: pi for pi in predictor.inputs})
    predicted = mapping[predictor.po_signals[predictor.outputs[0]]]

    emitter = Emitter(combined)
    actual = combined.po_signals[original_mapped.outputs[0]]
    for i, po in enumerate(original_mapped.outputs[1:]):
        actual = emitter.emit_xor(actual, combined.po_signals[po],
                                  stem=f"par_x{i}")
    inv_pred = emitter.emit_inv(predicted, "par_inv")
    error_pair = (actual, inv_pred)
    for i, signal in enumerate(error_pair):
        combined.set_output(f"__error{i}", signal)

    return CedAssembly(
        netlist=combined,
        original=original_mapped,
        error_pair=error_pair,
        fault_sites=fault_sites,
        directions={},
        checker_pairs={})
