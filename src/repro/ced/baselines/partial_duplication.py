"""Baseline: partial duplication CED (Mohanram & Touba, ITC'03 [10]).

Duplicate the logic cones of the most error-critical check points and
compare the duplicate against the original with an equality checker.
The paper frames partial duplication as the special case of approximate
logic with 100% approximation percentage and shared non-critical nodes;
its coverage is a lower bound for approximate logic with sharing.

Selection is greedy by detected-error contribution per duplicated gate,
under an area budget, which is the cost-effectiveness heuristic of [10].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability import error_contributions
from repro.synth.mapping import Emitter
from repro.synth.netlist import MappedNetlist

from ..architecture import CedAssembly, clone_netlist
from ..checker import emit_trc_tree


@dataclass
class DuplicationPlan:
    """Chosen check points and their duplicated cone."""

    check_points: list[str]
    duplicated_gates: set[str]

    @property
    def cost(self) -> int:
        return len(self.duplicated_gates)


def plan_duplication(original: MappedNetlist, area_budget_pct: float,
                     n_words: int = 8, seed: int = 2008,
                     candidates: list[str] | None = None
                     ) -> DuplicationPlan:
    """Pick check points greedily under an area budget.

    Candidates default to the primary-output driver gates, ranked by
    their error contribution; each selection pays for the part of its
    transitive fanin cone not yet duplicated.
    """
    budget = original.gate_count * area_budget_pct / 100.0
    contributions = error_contributions(original, n_words=n_words,
                                        seed=seed)
    if candidates is None:
        candidates = [original.po_signals[po] for po in original.outputs
                      if original.po_signals[po] in original.gates]
    cones = {c: _cone_gates(original, c) for c in candidates}
    chosen: list[str] = []
    duplicated: set[str] = set()
    remaining = [c for c in dict.fromkeys(candidates)]
    while remaining:
        def gain(c):
            extra = len(cones[c] - duplicated)
            return contributions.get(c, 0.0) / max(extra, 1)
        remaining.sort(key=gain, reverse=True)
        best = remaining.pop(0)
        extra = cones[best] - duplicated
        if len(duplicated) + len(extra) > budget and chosen:
            continue
        if len(duplicated) + len(extra) > budget:
            break
        chosen.append(best)
        duplicated |= extra
    return DuplicationPlan(chosen, duplicated)


def _cone_gates(netlist: MappedNetlist, signal: str) -> set[str]:
    cone: set[str] = set()
    stack = [signal]
    while stack:
        name = stack.pop()
        if name in cone or name not in netlist.gates:
            continue
        cone.add(name)
        stack.extend(netlist.gates[name].fanins)
    return cone


def build_partial_duplication(original: MappedNetlist,
                              area_budget_pct: float,
                              n_words: int = 8,
                              seed: int = 2008,
                              plan: DuplicationPlan | None = None
                              ) -> CedAssembly:
    """Assemble a partial-duplication CED circuit.

    Every check point's cone is re-instantiated from the primary inputs;
    check point vs. duplicate feed an equality comparator realized as a
    two-rail pair ``(original, INV(duplicate))``, consolidated by the
    standard TRC tree so the coverage harness is shared with the
    proposed technique.
    """
    if plan is None:
        plan = plan_duplication(original, area_budget_pct,
                                n_words=n_words, seed=seed)
    combined = clone_netlist(original, f"{original.name}_pdup")
    fault_sites = list(original.gates)

    # Duplicate the union cone once (shared among check points).
    mapping: dict[str, str] = {pi: pi for pi in original.inputs}
    for name in original.topological_order():
        if name not in plan.duplicated_gates:
            mapping[name] = name  # read the original signal (shared)
            continue
        gate = original.gates[name]
        dup = combined.fresh_name("dup_" + name)
        combined.add_gate(dup, gate.cell.name,
                          [mapping[f] for f in gate.fanins])
        mapping[name] = dup

    emitter = Emitter(combined)
    pairs = []
    for i, point in enumerate(plan.check_points):
        inv_dup = emitter.emit_inv(mapping[point], f"pd_inv{i}")
        pairs.append((point, inv_dup))
    if pairs:
        error_pair = emit_trc_tree(emitter, pairs, "pd_trc")
    else:
        # Empty plan: emit a constant valid pair (detects nothing).
        zero = emitter.emit_const(False, "pd_zero")
        one = emitter.emit_const(True, "pd_one")
        error_pair = (zero, one)
    for i, signal in enumerate(error_pair):
        combined.set_output(f"__error{i}", signal)

    return CedAssembly(
        netlist=combined,
        original=original,
        error_pair=error_pair,
        fault_sites=fault_sites,
        directions={},
        checker_pairs={po: pair for po, pair in
                       zip(plan.check_points, pairs)})
