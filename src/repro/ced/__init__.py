"""Concurrent error detection with approximate logic circuits (Sec 3)."""

from .checker import (checker_reference, emit_approximate_checker,
                      emit_trc_tree, emit_two_rail_cell, is_two_rail,
                      two_rail_cell_reference, valid_codeword)
from .architecture import CedAssembly, build_ced, clone_netlist
from .coverage import CoverageResult, evaluate_ced
from .sharing import merge_equivalent_gates
from .baselines import (DuplicationPlan, build_parity_ced,
                        build_parity_predictor,
                        build_partial_duplication, plan_duplication)
from .flow import CedFlowResult, run_ced_flow
from .masking import (MaskedCircuit, MaskingResult, build_masked_circuit,
                      evaluate_masking)
from .delay import evaluate_delay_fault_ced

__all__ = [
    "CedAssembly", "CedFlowResult", "CoverageResult", "DuplicationPlan",
    "MaskedCircuit", "MaskingResult", "build_masked_circuit",
    "build_ced", "build_parity_ced", "build_parity_predictor",
    "build_partial_duplication", "checker_reference", "clone_netlist",
    "emit_approximate_checker", "emit_trc_tree", "emit_two_rail_cell",
    "evaluate_ced", "evaluate_delay_fault_ced", "evaluate_masking",
    "is_two_rail", "merge_equivalent_gates",
    "plan_duplication", "run_ced_flow", "two_rail_cell_reference",
    "valid_codeword",
]
