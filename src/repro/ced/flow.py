"""The end-to-end CED flow (paper Fig. 2 + Sec 3).

``run_ced_flow`` chains every stage: quick synthesis and mapping,
reliability analysis (approximation directions), approximate logic
synthesis, mapping of the check symbol generator, checker assembly, and
fault-injection evaluation.  It returns everything the paper's tables
report — area/power overhead, CED coverage (achieved and maximum),
approximation percentage, and delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import dataclasses
import json

from repro.approx import (ApproxConfig, ApproxResult,
                          approximation_percentages,
                          synthesize_approximation)
from repro.network import Network
from repro.reliability import ReliabilityReport, analyze_reliability
from repro.sim import switching_activity
from repro.synth import SynthesisScript, QUICK_SCRIPT
from repro.synth.netlist import MappedNetlist

from .architecture import CedAssembly, build_ced
from .coverage import CoverageResult, evaluate_ced


@dataclass
class CedFlowResult:
    """All artifacts and measurements of one CED flow run."""

    original: Network
    original_mapped: MappedNetlist
    approx_result: ApproxResult
    approx_mapped: MappedNetlist
    assembly: CedAssembly
    reliability: ReliabilityReport
    coverage: CoverageResult
    approximation_pct: float
    metrics: dict[str, float] = field(default_factory=dict)
    #: Static-verification report (repro.lint), when requested.
    lint: object | None = None

    def summary(self) -> dict[str, float]:
        """The Table 1/2 row for this run (native JSON-safe types)."""
        return {
            "gates": int(self.original_mapped.gate_count),
            "area_overhead_pct":
                float(self.metrics["area_overhead_pct"]),
            "power_overhead_pct":
                float(self.metrics["power_overhead_pct"]),
            "approximation_pct": float(self.approximation_pct),
            "max_ced_coverage_pct": float(
                100 * self.reliability.max_ced_coverage),
            "ced_coverage_pct": float(self.coverage.coverage),
            "delay_change_pct":
                float(self.metrics["delay_change_pct"]),
            "shared_gates": int(self.assembly.shared_gates),
        }

    def to_dict(self) -> dict:
        """Machine-readable record of the run.

        Everything the tables and run manifests need, as plain JSON
        types — the summary row, the full metrics dict, per-output
        approximation directions, checking provenance, and the raw
        fault-campaign counters.
        """
        return {
            "circuit": self.original.name,
            "nodes": int(self.original.num_nodes),
            "inputs": len(self.original.inputs),
            "outputs": len(self.original.outputs),
            "summary": self.summary(),
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "directions": {po: int(d) for po, d
                           in self.assembly.directions.items()},
            "check_method": self.approx_result.check_method,
            "all_correct": bool(self.approx_result.all_correct),
            "repair_rounds": int(self.approx_result.repair_rounds),
            "checker_pairs": len(self.assembly.checker_pairs),
            "coverage": {
                "runs": int(self.coverage.runs),
                "error_runs": int(self.coverage.error_runs),
                "detected_error_runs":
                    int(self.coverage.detected_error_runs),
                "detected_runs": int(self.coverage.detected_runs),
                "false_alarms": int(self.coverage.false_alarms),
                "golden_invalid": int(self.coverage.golden_invalid),
            },
            **({"lint": self.lint.to_dict()}
               if self.lint is not None else {}),
        }

    def summary_json(self, **dumps_kwargs) -> str:
        """``summary()`` as a JSON document (round-trips losslessly)."""
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.summary(), **dumps_kwargs)


def _synthesize_with_floor(network: Network, directions: dict[str, int],
                           config: ApproxConfig, min_approx_pct: float
                           ) -> tuple[ApproxResult, dict[str, float]]:
    """Synthesize, retrying with gentler configs below the quality floor.

    The ladder widens the disparity/tiebreak ratios and lowers the DC
    and cube-drop thresholds — each step keeps more of the circuit — and
    ends at conservative-EX typing, which approaches the exact circuit.
    The best attempt (highest minimum per-output percentage) wins if
    the floor is never reached.
    """
    ladder = [config]
    if min_approx_pct > 0:
        ladder.append(dataclasses.replace(
            config, disparity_ratio=max(config.disparity_ratio, 8.0),
            phase_tiebreak=max(config.phase_tiebreak, 8.0),
            dc_threshold=min(config.dc_threshold, 0.1),
            cube_drop_threshold=min(config.cube_drop_threshold, 0.01)))
        ladder.append(dataclasses.replace(
            ladder[-1], conservative_ex=True, collapse_dc=False))
    best: tuple[ApproxResult, dict[str, float]] | None = None
    best_floor = -1.0
    for attempt in ladder:
        result = synthesize_approximation(network, directions, attempt)
        pct = approximation_percentages(
            network, result.approx, directions,
            bdd_node_budget=attempt.bdd_node_budget)
        floor = min(pct.values(), default=100.0)
        if floor > best_floor:
            best, best_floor = (result, pct), floor
        if floor >= min_approx_pct:
            break
    assert best is not None
    return best


def run_ced_flow(network: Network,
                 config: ApproxConfig | None = None,
                 script: SynthesisScript = QUICK_SCRIPT,
                 share_logic: bool = False,
                 share_loss_budget: float = 0.10,
                 reliability_words: int = 4,
                 coverage_words: int = 4,
                 power_words: int = 8,
                 seed: int = 2008,
                 directions: dict[str, int] | None = None,
                 min_approx_pct: float = 25.0,
                 lint_level: str = "off",
                 certificate_dir=None
                 ) -> CedFlowResult:
    """Run the complete approximate-logic CED flow on a network.

    ``directions`` overrides reliability analysis when provided (useful
    for controlled experiments); otherwise the dominant error direction
    of every output picks its approximation type, as in the paper.

    ``min_approx_pct`` is a per-output quality floor: when an output's
    approximation percentage falls below it (e.g. the cone collapsed to
    a constant), synthesis is retried with progressively gentler
    settings — the practical face of the paper's fine-grained
    overhead/coverage knob.  Set to 0 to disable.

    ``lint_level`` runs the static verifier (repro.lint) over the
    finished flow: "warn" attaches the report (with implication
    certificates) to the result, "strict" also raises LintError on
    error diagnostics.  ``certificate_dir`` writes the certificates as
    JSON files.
    """
    if lint_level not in ("off", "warn", "strict"):
        raise ValueError(f"unknown lint level {lint_level!r}")
    config = config or ApproxConfig(seed=seed)
    original_mapped = script.run(network)
    reliability = analyze_reliability(original_mapped,
                                      n_words=reliability_words,
                                      seed=seed)
    if directions is None:
        directions = reliability.approximations
    approx_result, per_output_pct = _synthesize_with_floor(
        network, directions, config, min_approx_pct)
    approximation_pct = (sum(per_output_pct.values())
                         / len(per_output_pct)) if per_output_pct \
        else 100.0
    approx_mapped = script.run(approx_result.approx)
    assembly = build_ced(original_mapped, approx_mapped, directions,
                         share_logic=share_logic,
                         share_loss_budget=share_loss_budget)
    coverage = evaluate_ced(assembly, n_words=coverage_words,
                            seed=seed + 7)

    base_power = switching_activity(original_mapped, n_words=power_words,
                                    seed=seed)
    approx_power = switching_activity(approx_mapped, n_words=power_words,
                                      seed=seed)
    total_power = switching_activity(assembly.netlist,
                                     n_words=power_words, seed=seed)
    base_delay = original_mapped.delay()
    approx_delay = approx_mapped.delay()
    shared = assembly.shared_gates
    metrics = {
        # The paper's accounting: the check symbol generator only (the
        # checkers/TRC tree are conventional CED plumbing, identical
        # across schemes, and excluded — see DESIGN.md).
        "area_overhead_pct": 100.0 * (approx_mapped.gate_count - shared)
        / max(original_mapped.gate_count, 1),
        "power_overhead_pct": 100.0 * approx_power
        / max(base_power, 1e-9),
        "area_overhead_with_checkers_pct": 100.0
        * assembly.overhead_gates / max(original_mapped.gate_count, 1),
        "power_overhead_with_checkers_pct": 100.0
        * (total_power - base_power) / max(base_power, 1e-9),
        "delay_change_pct": 100.0 * (approx_delay - base_delay)
        / max(base_delay, 1e-9),
        "original_delay": base_delay,
        "approx_delay": approx_delay,
        "original_gates": float(original_mapped.gate_count),
        "approx_gates": float(approx_mapped.gate_count),
        "overhead_gates": float(assembly.overhead_gates),
    }
    result = CedFlowResult(
        original=network,
        original_mapped=original_mapped,
        approx_result=approx_result,
        approx_mapped=approx_mapped,
        assembly=assembly,
        reliability=reliability,
        coverage=coverage,
        approximation_pct=approximation_pct,
        metrics=metrics)
    if lint_level != "off":
        # Imported lazily: repro.lint imports the approx layer.
        from repro.lint import LintError, lint_flow
        result.lint = lint_flow(result, certificate_dir=certificate_dir)
        if lint_level == "strict" and not result.lint.ok:
            raise LintError(result.lint)
    return result
