"""The end-to-end CED flow (paper Fig. 2 + Sec 3).

``run_ced_flow`` runs every stage — quick synthesis and mapping,
reliability analysis (approximation directions), approximate logic
synthesis, mapping of the check symbol generator, checker assembly, and
fault-injection evaluation — as named passes on the
:class:`~repro.flow.PassManager`.  The passes share one
:class:`~repro.flow.AnalysisContext`, so the global BDDs the synthesis
checker builds are reused by the approximation-percentage metric and
the lint re-prover instead of being rebuilt per stage; every pass
leaves wall time and cache counters in the result's
:class:`~repro.flow.FlowTrace`, and — when a checkpoint directory is
given — persists its outputs so a killed run resumes mid-pipeline.

It returns everything the paper's tables report — area/power overhead,
CED coverage (achieved and maximum), approximation percentage, and
delays — bit-identical to the pre-pass-manager monolith.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import dataclasses
import json

from repro.approx import ApproxConfig, ApproxResult
from repro.approx.engine import get_engine
from repro.flow import (AnalysisContext, FlowContext, FlowTrace, Pass,
                        PassManager, PassRecord, flow_token)
from repro.guard import Budget, apply_chaos, parse_chaos
from repro.network import Network, write_blif
from repro.reliability import ReliabilityReport, analyze_reliability
from repro.synth import SynthesisScript, QUICK_SCRIPT
from repro.synth.netlist import MappedNetlist

from .architecture import CedAssembly, build_ced
from .coverage import CoverageResult, evaluate_ced


@dataclass
class CedFlowResult:
    """All artifacts and measurements of one CED flow run."""

    original: Network
    original_mapped: MappedNetlist
    approx_result: ApproxResult
    approx_mapped: MappedNetlist
    assembly: CedAssembly
    reliability: ReliabilityReport
    coverage: CoverageResult
    approximation_pct: float
    metrics: dict[str, float] = field(default_factory=dict)
    #: Static-verification report (repro.lint), when requested.
    lint: object | None = None
    #: Per-pass instrumentation of the run (wall time, cache counters).
    trace: FlowTrace | None = None
    #: Resource-governance record (plain dict,
    #: :meth:`repro.guard.BudgetReport.to_dict`) when the run was
    #: budget-governed.
    budget_report: dict | None = None

    def summary(self) -> dict[str, float]:
        """The Table 1/2 row for this run (native JSON-safe types)."""
        return {
            "gates": int(self.original_mapped.gate_count),
            "area_overhead_pct":
                float(self.metrics["area_overhead_pct"]),
            "power_overhead_pct":
                float(self.metrics["power_overhead_pct"]),
            "approximation_pct": float(self.approximation_pct),
            "max_ced_coverage_pct": float(
                100 * self.reliability.max_ced_coverage),
            "ced_coverage_pct": float(self.coverage.coverage),
            "delay_change_pct":
                float(self.metrics["delay_change_pct"]),
            "shared_gates": int(self.assembly.shared_gates),
        }

    def to_dict(self) -> dict:
        """Machine-readable record of the run.

        Everything the tables and run manifests need, as plain JSON
        types — the summary row, the full metrics dict, per-output
        approximation directions, checking provenance, the raw
        fault-campaign counters, and the per-pass flow trace.
        """
        return {
            "circuit": self.original.name,
            "nodes": int(self.original.num_nodes),
            "inputs": len(self.original.inputs),
            "outputs": len(self.original.outputs),
            "summary": self.summary(),
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "directions": {po: int(d) for po, d
                           in self.assembly.directions.items()},
            "engine": self.approx_result.engine,
            **({"error_report": self.approx_result.error_report}
               if self.approx_result.error_report is not None else {}),
            "check_method": self.approx_result.check_method,
            "all_correct": bool(self.approx_result.all_correct),
            "repair_rounds": int(self.approx_result.repair_rounds),
            "checker_pairs": len(self.assembly.checker_pairs),
            "coverage": {
                "runs": int(self.coverage.runs),
                "error_runs": int(self.coverage.error_runs),
                "detected_error_runs":
                    int(self.coverage.detected_error_runs),
                "detected_runs": int(self.coverage.detected_runs),
                "false_alarms": int(self.coverage.false_alarms),
                "golden_invalid": int(self.coverage.golden_invalid),
            },
            **({"trace": self.trace.to_dict()}
               if self.trace is not None else {}),
            **({"lint": self.lint.to_dict()}
               if self.lint is not None else {}),
            **({"budget_report": self.budget_report}
               if self.budget_report is not None else {}),
        }

    def summary_json(self, **dumps_kwargs) -> str:
        """``summary()`` as a JSON document (round-trips losslessly)."""
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.summary(), **dumps_kwargs)


def _synthesize_with_floor(network: Network, directions: dict[str, int],
                           config: ApproxConfig, min_approx_pct: float,
                           ctx: AnalysisContext | None = None,
                           record: PassRecord | None = None,
                           budget: Budget | None = None
                           ) -> tuple[ApproxResult, dict[str, float]]:
    """Engine dispatch for synthesis under the flow's quality floor.

    The quality-floor retry ladder itself moved to
    :class:`repro.approx.engine.CubeSelectionEngine` (bit-identical);
    this shim keeps the historical entry point and routes any
    configured engine.
    """
    return get_engine(config.engine).synthesize_with_floor(
        network, directions, config, min_approx_pct, ctx=ctx,
        record=record, budget=budget)


# ----------------------------------------------------------------------
# The CED pipeline as passes
# ----------------------------------------------------------------------
class MapOriginalPass(Pass):
    """Technology-map the original network (the circuit under CED)."""

    name = "map-original"
    provides = ("original_mapped",)
    checkpoint = ("original_mapped",)

    def __init__(self, script: SynthesisScript):
        self.script = script

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        mapped = self.script.run(ctx.network)
        record.stats["gates"] = mapped.gate_count
        return {"original_mapped": mapped}


class ReliabilityPass(Pass):
    """Error-direction profile -> approximation direction per PO."""

    name = "reliability"
    requires = ("original_mapped",)
    provides = ("reliability", "directions")
    checkpoint = ("reliability", "directions")

    def __init__(self, n_words: int, seed: int,
                 directions: dict[str, int] | None):
        self.n_words = n_words
        self.seed = seed
        self.directions = directions

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        reliability = analyze_reliability(
            ctx["original_mapped"], n_words=self.n_words,
            seed=self.seed, ctx=ctx.analysis)
        directions = self.directions if self.directions is not None \
            else reliability.approximations
        record.stats.update({"runs": reliability.runs,
                             "error_runs": reliability.error_runs})
        return {"reliability": reliability, "directions": directions}


class SynthesizeApproxPass(Pass):
    """Approximate synthesis, dispatched through the engine registry.

    ``config.engine`` picks the registered
    :class:`~repro.approx.engine.ApproxEngine`; the engine's own
    flow entry point handles quality policy (the cube engine's
    quality-floor retry ladder, the resub engine's error bound) and
    records engine identity plus error budget spent in the trace.
    """

    name = "synthesize"
    requires = ("directions",)
    provides = ("approx_result", "per_output_pct", "approximation_pct")
    checkpoint = ("approx_result", "per_output_pct",
                  "approximation_pct")

    def __init__(self, config: ApproxConfig, min_approx_pct: float):
        self.config = config
        self.min_approx_pct = min_approx_pct

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        engine = get_engine(self.config.engine)
        approx_result, per_output_pct = engine.synthesize_with_floor(
            ctx.network, ctx["directions"], self.config,
            self.min_approx_pct, ctx=ctx.analysis, record=record,
            budget=ctx.budget)
        approximation_pct = (sum(per_output_pct.values())
                             / len(per_output_pct)) if per_output_pct \
            else 100.0
        return {"approx_result": approx_result,
                "per_output_pct": per_output_pct,
                "approximation_pct": approximation_pct}


class MapApproxPass(Pass):
    """Technology-map the approximate check symbol generator."""

    name = "map-approx"
    requires = ("approx_result",)
    provides = ("approx_mapped",)
    checkpoint = ("approx_mapped",)

    def __init__(self, script: SynthesisScript):
        self.script = script

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        mapped = self.script.run(ctx["approx_result"].approx)
        record.stats["gates"] = mapped.gate_count
        return {"approx_mapped": mapped}


class AssembleCedPass(Pass):
    """Wire checkers and the two-rail checker tree (non-intrusive)."""

    name = "assemble"
    requires = ("original_mapped", "approx_mapped", "directions")
    provides = ("assembly",)
    checkpoint = ("assembly",)

    def __init__(self, share_logic: bool, share_loss_budget: float):
        self.share_logic = share_logic
        self.share_loss_budget = share_loss_budget

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        assembly = build_ced(ctx["original_mapped"],
                             ctx["approx_mapped"], ctx["directions"],
                             share_logic=self.share_logic,
                             share_loss_budget=self.share_loss_budget)
        record.stats.update({
            "shared_gates": assembly.shared_gates,
            "checker_pairs": len(assembly.checker_pairs),
        })
        return {"assembly": assembly}


class CoveragePass(Pass):
    """Stuck-at fault-injection campaign against the CED assembly."""

    name = "coverage"
    requires = ("assembly",)
    provides = ("coverage",)
    checkpoint = ("coverage",)

    def __init__(self, n_words: int, seed: int):
        self.n_words = n_words
        self.seed = seed

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        coverage = evaluate_ced(ctx["assembly"], n_words=self.n_words,
                                seed=self.seed, ctx=ctx.analysis)
        record.stats.update({
            "runs": coverage.runs,
            "error_runs": coverage.error_runs,
            "detected_error_runs": coverage.detected_error_runs,
        })
        return {"coverage": coverage}


class MetricsPass(Pass):
    """Area/power/delay overheads (the Table 1/2 accounting)."""

    name = "metrics"
    requires = ("original_mapped", "approx_mapped", "assembly")
    provides = ("metrics",)
    checkpoint = ("metrics",)

    def __init__(self, n_words: int, seed: int):
        self.n_words = n_words
        self.seed = seed

    def run(self, ctx: FlowContext, record: PassRecord) -> dict:
        original_mapped = ctx["original_mapped"]
        approx_mapped = ctx["approx_mapped"]
        assembly = ctx["assembly"]
        switching = ctx.analysis.switching
        base_power = switching(original_mapped, n_words=self.n_words,
                               seed=self.seed)
        approx_power = switching(approx_mapped, n_words=self.n_words,
                                 seed=self.seed)
        total_power = switching(assembly.netlist, n_words=self.n_words,
                                seed=self.seed)
        base_delay = original_mapped.delay()
        approx_delay = approx_mapped.delay()
        shared = assembly.shared_gates
        metrics = {
            # The paper's accounting: the check symbol generator only
            # (the checkers/TRC tree are conventional CED plumbing,
            # identical across schemes, and excluded — see DESIGN.md).
            "area_overhead_pct": 100.0
            * (approx_mapped.gate_count - shared)
            / max(original_mapped.gate_count, 1),
            "power_overhead_pct": 100.0 * approx_power
            / max(base_power, 1e-9),
            "area_overhead_with_checkers_pct": 100.0
            * assembly.overhead_gates
            / max(original_mapped.gate_count, 1),
            "power_overhead_with_checkers_pct": 100.0
            * (total_power - base_power) / max(base_power, 1e-9),
            "delay_change_pct": 100.0 * (approx_delay - base_delay)
            / max(base_delay, 1e-9),
            "original_delay": base_delay,
            "approx_delay": approx_delay,
            "original_gates": float(original_mapped.gate_count),
            "approx_gates": float(approx_mapped.gate_count),
            "overhead_gates": float(assembly.overhead_gates),
        }
        return {"metrics": metrics}


def ced_flow_passes(config: ApproxConfig,
                    script: SynthesisScript,
                    share_logic: bool, share_loss_budget: float,
                    reliability_words: int, coverage_words: int,
                    power_words: int, seed: int,
                    directions: dict[str, int] | None,
                    min_approx_pct: float) -> list[Pass]:
    """The standard CED pipeline, in dependency order."""
    return [
        MapOriginalPass(script),
        ReliabilityPass(reliability_words, seed, directions),
        SynthesizeApproxPass(config, min_approx_pct),
        MapApproxPass(script),
        AssembleCedPass(share_logic, share_loss_budget),
        CoveragePass(coverage_words, seed + 7),
        MetricsPass(power_words, seed),
    ]


def _checkpoint_setup(network: Network, checkpoint_dir,
                      params: dict) -> tuple[object | None, str | None]:
    """Open the content-addressed store and derive the flow token."""
    if checkpoint_dir is None:
        return None, None
    # Imported lazily: repro.lab imports the ced layer.
    from repro.lab.cache import ArtifactStore
    store = ArtifactStore(checkpoint_dir)
    token = flow_token(write_blif(network), params)
    return store, token


def run_ced_flow(network: Network,
                 config: ApproxConfig | None = None,
                 script: SynthesisScript = QUICK_SCRIPT,
                 share_logic: bool = False,
                 share_loss_budget: float = 0.10,
                 reliability_words: int = 4,
                 coverage_words: int = 4,
                 power_words: int = 8,
                 seed: int = 2008,
                 directions: dict[str, int] | None = None,
                 min_approx_pct: float = 25.0,
                 lint_level: str = "off",
                 certificate_dir=None,
                 ctx: AnalysisContext | None = None,
                 checkpoint_dir=None,
                 proof_cache_dir=None,
                 budget: Budget | None = None,
                 chaos=(),
                 on_pass=None
                 ) -> CedFlowResult:
    """Run the complete approximate-logic CED flow on a network.

    ``directions`` overrides reliability analysis when provided (useful
    for controlled experiments); otherwise the dominant error direction
    of every output picks its approximation type, as in the paper.

    ``min_approx_pct`` is a per-output quality floor: when an output's
    approximation percentage falls below it (e.g. the cone collapsed to
    a constant), synthesis is retried with progressively gentler
    settings — the practical face of the paper's fine-grained
    overhead/coverage knob.  Set to 0 to disable.

    ``lint_level`` runs the static verifier (repro.lint) over the
    finished flow: "warn" attaches the report (with implication
    certificates) to the result, "strict" also raises LintError on
    error diagnostics.  ``certificate_dir`` writes the certificates as
    JSON files.

    ``ctx`` supplies a shared :class:`~repro.flow.AnalysisContext`
    (one is created per run otherwise); ``checkpoint_dir`` persists
    each pass's outputs to a content-addressed store there, so an
    identical re-run — including one that was killed mid-pipeline —
    resumes after the last completed pass.

    ``proof_cache_dir`` attaches a cross-process proof cache
    (:class:`repro.lab.proofs.ProofCache`): per-PO implication verdicts
    and approximation percentages are keyed by cone fingerprint, so a
    warm run serves them from disk instead of re-proving.  Only exact
    (BDD/SAT) verdicts are cached, keeping results bit-identical with
    or without the cache; the knob is deliberately *not* part of the
    checkpoint token for the same reason.

    ``budget`` makes the run resource-governed: synthesis walks the
    degradation ladder (BDD -> SAT -> conformance-only) instead of
    raising on overflow/exhaustion, every pass polls the deadline, and
    the result carries a structured ``budget_report``.  A ``deadline_s``
    of 0 fails fast at flow entry with
    :class:`~repro.guard.DeadlineExceeded`.  ``chaos`` injects
    deterministic resource faults (see :mod:`repro.guard.chaos`) for
    testing; it implies a budget.

    ``on_pass`` is a live-progress observer: it is called with each
    completed :class:`~repro.flow.PassRecord` (including the lint
    record) right after the record joins the trace.  The serve layer
    streams these to clients; the hook must not mutate the record.
    """
    if lint_level not in ("off", "warn", "strict"):
        raise ValueError(f"unknown lint level {lint_level!r}")
    chaos = parse_chaos(chaos)
    budget = apply_chaos(budget, chaos)
    config = config or ApproxConfig(seed=seed)
    analysis = ctx if ctx is not None else AnalysisContext()
    if proof_cache_dir is not None:
        # Imported lazily: repro.lab imports the ced layer.
        from pathlib import Path

        from repro.lab.proofs import ProofCache
        if analysis.proofs is None or \
                analysis.proofs.root != Path(proof_cache_dir):
            analysis.proofs = ProofCache(proof_cache_dir)
    params = {
        "script": script.name,
        "config": dataclasses.asdict(config),
        "share_logic": share_logic,
        "share_loss_budget": share_loss_budget,
        "reliability_words": reliability_words,
        "coverage_words": coverage_words,
        "power_words": power_words,
        "seed": seed,
        "directions": directions,
        "min_approx_pct": min_approx_pct,
        # Budget/chaos separate the checkpoint key space: a governed
        # (possibly degraded) run must never be resumed from — or
        # poison — an ungoverned run's checkpoints.
        "budget": budget.describe() if budget is not None else None,
        "chaos": list(chaos),
    }
    if budget is not None:
        budget.start()
        # deadline_s=0 contract: fail fast with a structured error
        # before any pass runs.
        budget.check_deadline("flow entry")
        analysis.guard = budget
    store, token = _checkpoint_setup(network, checkpoint_dir, params)
    passes = ced_flow_passes(config, script, share_logic,
                             share_loss_budget, reliability_words,
                             coverage_words, power_words, seed,
                             directions, min_approx_pct)
    flow_ctx = FlowContext(network, params=params, analysis=analysis,
                           budget=budget)
    try:
        PassManager(passes, store=store, token=token,
                    on_record=on_pass).run(flow_ctx)
    finally:
        # Lint (and any later consumer of the shared context) re-proves
        # from scratch; an expired deadline must not abort it.
        analysis.guard = None

    result = CedFlowResult(
        original=network,
        original_mapped=flow_ctx["original_mapped"],
        approx_result=flow_ctx["approx_result"],
        approx_mapped=flow_ctx["approx_mapped"],
        assembly=flow_ctx["assembly"],
        reliability=flow_ctx["reliability"],
        coverage=flow_ctx["coverage"],
        approximation_pct=flow_ctx["approximation_pct"],
        metrics=flow_ctx["metrics"],
        trace=flow_ctx.trace)
    if budget is not None:
        report = budget.report.to_dict()
        flow_ctx.trace.budget = report
        result.budget_report = report
    if lint_level != "off":
        # Imported lazily: repro.lint imports the approx layer.  Lint
        # runs outside the manager (it consumes the assembled result)
        # but is traced like any pass, reusing the shared pair BDDs.
        from repro.lint import LintError, lint_flow
        record = PassRecord(name="lint")
        before = analysis.snapshot()
        start = time.perf_counter()
        result.lint = lint_flow(result, certificate_dir=certificate_dir,
                                ctx=analysis)
        record.wall_time_s = time.perf_counter() - start
        record.cache = AnalysisContext.delta(before, analysis.snapshot())
        record.stats["diagnostics"] = len(result.lint.diagnostics)
        flow_ctx.trace.add(record)
        if on_pass is not None:
            on_pass(record)
        if lint_level == "strict" and not result.lint.ok:
            raise LintError(result.lint)
    return result
