"""Error masking with approximate logic circuits (paper Sec 5, item ii).

The paper's future work proposes "combined error detection and error
masking to enhance circuit reliability".  Approximate circuits support
a provably safe masking construction:

* a **0-approximation** X of output Y satisfies ``!X => !Y``: whenever
  X is 0 the true value is 0, so ``Y_masked = Y AND X`` never corrupts
  a fault-free circuit and silently squashes every 0->1 error that
  occurs while CED is active;
* dually, a **1-approximation** gives ``Y_masked = Y OR X``.

Masking composes with detection: the same check symbol generator both
flags and corrects errors in the protected direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import (DEFAULT_BATCH, WORD_BITS, Fault, batched,
                       get_simulator, popcount)
from repro.synth.mapping import Emitter
from repro.synth.netlist import MappedNetlist

from .architecture import clone_netlist


@dataclass
class MaskedCircuit:
    """A circuit with masked outputs plus evaluation bookkeeping."""

    netlist: MappedNetlist
    original: MappedNetlist
    fault_sites: list[str]
    directions: dict[str, int]
    masked_outputs: dict[str, str]   # po -> masked signal name


def build_masked_circuit(original: MappedNetlist,
                         approx: MappedNetlist,
                         directions: dict[str, int]) -> MaskedCircuit:
    """Combine original and approximate circuits into a masking design.

    Every output gains a masked counterpart ``<po>__masked`` computed as
    ``Y AND X`` (0-approximation) or ``Y OR X`` (1-approximation).  The
    construction is safe: fault-free, masked and raw outputs agree.
    """
    combined = clone_netlist(original, f"{original.name}_masked")
    fault_sites = list(original.gates)
    mapping = combined.merge_from(approx, "apx_",
                                  {pi: pi for pi in approx.inputs})
    emitter = Emitter(combined)
    masked: dict[str, str] = {}
    for po in original.outputs:
        direction = directions[po]
        y = combined.po_signals[po]
        x = mapping[approx.po_signals[po]]
        if direction == 0:
            signal = emitter.emit_and([y, x], f"mask_{po}")
        else:
            signal = emitter.emit_or([y, x], f"mask_{po}")
        masked_name = f"{po}__masked"
        combined.set_output(masked_name, signal)
        masked[po] = masked_name
    return MaskedCircuit(netlist=combined, original=original,
                         fault_sites=fault_sites,
                         directions=dict(directions),
                         masked_outputs=masked)


@dataclass
class MaskingResult:
    """Error rates with and without masking, from one campaign."""

    runs: int
    raw_error_runs: int
    masked_error_runs: int

    @property
    def raw_error_rate(self) -> float:
        return self.raw_error_runs / self.runs if self.runs else 0.0

    @property
    def masked_error_rate(self) -> float:
        return self.masked_error_runs / self.runs if self.runs else 0.0

    @property
    def reduction_pct(self) -> float:
        """Errors removed by masking, as a percentage of raw errors."""
        if self.raw_error_runs == 0:
            return 0.0
        return 100.0 * (self.raw_error_runs - self.masked_error_runs) \
            / self.raw_error_runs


def evaluate_masking(masked: MaskedCircuit, n_words: int = 8,
                     seed: int = 2008,
                     faults: list[Fault] | None = None,
                     vector_mode: str = "shared",
                     batch_size: int = DEFAULT_BATCH,
                     ctx=None) -> MaskingResult:
    """Fault-inject the masked circuit and compare error rates.

    A *raw* error run has some unmasked output wrong; a *masked* error
    run has some masked output wrong.  Masking must never increase the
    error count (asserted via the construction; measured here).
    """
    sim = (ctx.simulator if ctx is not None
           else get_simulator)(masked.netlist)
    if faults is None:
        faults = [Fault(site, v) for site in masked.fault_sites
                  for v in (0, 1)]
    raw_idx = [sim.index[masked.netlist.po_signals[po]]
               for po in masked.original.outputs]
    masked_idx = [sim.index[masked.netlist.po_signals[m]]
                  for m in masked.masked_outputs.values()]
    rng = np.random.default_rng(seed)
    runs = raw_errors = masked_errors = 0
    if vector_mode == "shared":
        golden = sim.run(sim.random_inputs(rng, n_words))
        golden_raw = golden[raw_idx]
        golden_masked = golden[masked_idx]
        runs = len(faults) * n_words * WORD_BITS
        for batch in batched(faults, sim, batch_size):
            scratch = sim.run_stuck_batch(golden, batch)
            raw_mask = np.bitwise_or.reduce(
                scratch[raw_idx] ^ golden_raw[:, None, :], axis=0)
            masked_mask = np.bitwise_or.reduce(
                scratch[masked_idx] ^ golden_masked[:, None, :], axis=0)
            raw_errors += popcount(raw_mask)
            masked_errors += popcount(masked_mask)
    else:
        for fault in faults:
            pi_words = sim.random_inputs(rng, n_words)
            golden = sim.run(pi_words)
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            runs += n_words * WORD_BITS
            raw_mask = np.zeros(n_words, dtype=np.uint64)
            for idx in raw_idx:
                raw_mask |= golden[idx] ^ overlay.get(idx, golden[idx])
            masked_mask = np.zeros(n_words, dtype=np.uint64)
            for idx in masked_idx:
                masked_mask |= golden[idx] ^ overlay.get(idx, golden[idx])
            raw_errors += popcount(raw_mask)
            masked_errors += popcount(masked_mask)
    return MaskingResult(runs=runs, raw_error_runs=raw_errors,
                         masked_error_runs=masked_errors)
