"""Totally self-checking checkers (paper Sec 3.2, Fig. 3).

For an output ``Y`` protected by an approximate signal ``X``:

* **0-approximation** (``!X => !Y``): the codeword ``(X, Y) = (0, 1)``
  cannot occur fault-free.  The checker emits the two-rail pair
  ``(Y, NAND(X, Y))`` — complementary on every valid codeword, equal
  (invalid) exactly on ``(0, 1)``.
* **1-approximation** (``X => Y``): ``(1, 0)`` is the invalid codeword
  and the checker is ``(Y, NOR(X, Y))``.

Checker pairs are consolidated by a tree of totally self-checking
two-rail code (TRC) checker cells: ``c0 = a0 b0 + a1 b1``,
``c1 = a0 b1 + a1 b0`` — the classic TSC two-rail checker.
"""

from __future__ import annotations

from repro.synth.mapping import Emitter


# ----------------------------------------------------------------------
# Reference semantics (used by tests and TSC-property verification)
# ----------------------------------------------------------------------
def checker_reference(x: bool, y: bool, direction: int) -> tuple[bool, bool]:
    """Truth-table semantics of the 0/1-approximate checker."""
    if direction == 0:
        return y, not (x and y)      # (Y, NAND(X, Y))
    return y, not (x or y)           # (Y, NOR(X, Y))


def valid_codeword(x: bool, y: bool, direction: int) -> bool:
    """Is (X, Y) a possible fault-free checker input?"""
    if direction == 0:
        return not (not x and y)     # (0,1) impossible for 0-approx
    return not (x and not y)         # (1,0) impossible for 1-approx


def is_two_rail(pair: tuple[bool, bool]) -> bool:
    """Valid two-rail output: the pair is complementary."""
    return pair[0] != pair[1]


def two_rail_cell_reference(a: tuple[bool, bool],
                            b: tuple[bool, bool]) -> tuple[bool, bool]:
    """Truth-table semantics of the TSC two-rail checker cell."""
    c0 = (a[0] and b[0]) or (a[1] and b[1])
    c1 = (a[0] and b[1]) or (a[1] and b[0])
    return c0, c1


# ----------------------------------------------------------------------
# Gate-level construction
# ----------------------------------------------------------------------
def emit_approximate_checker(emitter: Emitter, x_signal: str,
                             y_signal: str, direction: int,
                             stem: str) -> tuple[str, str]:
    """Instantiate a 0/1-approximate checker; returns its two-rail pair."""
    if direction == 0:
        other = emitter.emit_nand([x_signal, y_signal], stem + "_c")
    elif direction == 1:
        other = emitter.emit_nor([x_signal, y_signal], stem + "_c")
    else:
        raise ValueError("direction must be 0 or 1")
    return y_signal, other


def emit_two_rail_cell(emitter: Emitter, a: tuple[str, str],
                       b: tuple[str, str], stem: str) -> tuple[str, str]:
    """Instantiate one TRC checker cell over two two-rail pairs."""
    t00 = emitter.emit_and([a[0], b[0]], stem + "_p")
    t11 = emitter.emit_and([a[1], b[1]], stem + "_q")
    c0 = emitter.emit_or([t00, t11], stem + "_c0")
    t01 = emitter.emit_and([a[0], b[1]], stem + "_r")
    t10 = emitter.emit_and([a[1], b[0]], stem + "_s")
    c1 = emitter.emit_or([t01, t10], stem + "_c1")
    return c0, c1


def emit_trc_tree(emitter: Emitter, pairs: list[tuple[str, str]],
                  stem: str) -> tuple[str, str]:
    """Consolidate checker pairs into one two-rail pair (balanced tree)."""
    if not pairs:
        raise ValueError("no checker pairs to consolidate")
    level = 0
    current = list(pairs)
    while len(current) > 1:
        merged = []
        for i in range(0, len(current) - 1, 2):
            merged.append(emit_two_rail_cell(
                emitter, current[i], current[i + 1],
                f"{stem}_l{level}_{i // 2}"))
        if len(current) % 2 == 1:
            merged.append(current[-1])
        current = merged
        level += 1
    return current[0]
