"""CED coverage for transition (delay) faults — the Sec 5 extension.

Evaluates a :class:`~repro.ced.architecture.CedAssembly` under the
transition-fault model of :mod:`repro.sim.delayfaults`: random vector
pairs, a slow-to-rise/fall fault on one original gate, detection via
the consolidated two-rail pair in the second cycle.

The approximate check-symbol generator and the checkers are assumed to
meet timing (the approximate circuit's critical path is much shorter
than the original's — the very property the paper leverages), so only
the original gates carry delay faults.
"""

from __future__ import annotations

import numpy as np

from repro.sim import DEFAULT_BATCH, WORD_BITS, get_simulator, popcount
from repro.sim.delayfaults import (TransitionFault, run_transition_fault,
                                   run_transition_fault_batch,
                                   transition_fault_list)

from .architecture import CedAssembly
from .coverage import CoverageResult


def evaluate_delay_fault_ced(assembly: CedAssembly, n_words: int = 8,
                             seed: int = 2008,
                             faults: list[TransitionFault] | None = None,
                             vector_mode: str = "shared",
                             batch_size: int = DEFAULT_BATCH,
                             ctx=None) -> CoverageResult:
    """Fault-simulate transition faults and measure CED coverage.

    ``vector_mode="shared"`` draws one golden vector *pair* for the
    whole campaign and batches fault evaluation on the compiled tape;
    ``"per-fault"`` draws a fresh pair per fault (the seed scheme).
    """
    sim = (ctx.simulator if ctx is not None
           else get_simulator)(assembly.netlist)
    if faults is None:
        faults = transition_fault_list(assembly.netlist,
                                       signals=assembly.fault_sites)
    po_indices = [sim.index[assembly.netlist.po_signals[po]]
                  for po in assembly.original.outputs]
    e0 = sim.index[assembly.error_pair[0]]
    e1 = sim.index[assembly.error_pair[1]]
    rng = np.random.default_rng(seed)

    runs = error_runs = detected_error = detected_all = false_alarms = 0
    golden_invalid = 0
    if vector_mode == "shared":
        first = sim.run(sim.random_inputs(rng, n_words))
        second = sim.run(sim.random_inputs(rng, n_words))
        valid = second[e0] ^ second[e1]
        golden_invalid = popcount(~valid) * len(faults)
        second_po = second[po_indices]
        runs = len(faults) * n_words * WORD_BITS
        ordered = sorted(faults, key=lambda f: sim.site_level(f.signal))
        for start in range(0, len(ordered), batch_size):
            batch = ordered[start:start + batch_size]
            scratch = run_transition_fault_batch(sim, first, second,
                                                 batch)
            diff = scratch[po_indices] ^ second_po[:, None, :]
            error_mask = np.bitwise_or.reduce(diff, axis=0) & valid
            detect_mask = ~(scratch[e0] ^ scratch[e1]) & valid
            error_runs += popcount(error_mask)
            detected_error += popcount(error_mask & detect_mask)
            detected_all += popcount(detect_mask)
            false_alarms += popcount(detect_mask & ~error_mask)
        return CoverageResult(
            runs=runs,
            error_runs=error_runs,
            detected_error_runs=detected_error,
            detected_runs=detected_all,
            false_alarms=false_alarms,
            golden_invalid=golden_invalid)
    for fault in faults:
        first = sim.run(sim.random_inputs(rng, n_words))
        second = sim.run(sim.random_inputs(rng, n_words))
        valid = second[e0] ^ second[e1]
        golden_invalid += popcount(~valid)
        overlay = run_transition_fault(sim, first, second, fault)
        runs += n_words * WORD_BITS

        error_mask = np.zeros(n_words, dtype=np.uint64)
        for idx in po_indices:
            error_mask |= second[idx] ^ overlay.get(idx, second[idx])
        error_mask &= valid
        f0 = overlay.get(e0, second[e0])
        f1 = overlay.get(e1, second[e1])
        detect_mask = ~(f0 ^ f1) & valid

        error_runs += popcount(error_mask)
        detected_error += popcount(error_mask & detect_mask)
        detected_all += popcount(detect_mask)
        false_alarms += popcount(detect_mask & ~error_mask)
    return CoverageResult(
        runs=runs,
        error_runs=error_runs,
        detected_error_runs=detected_error,
        detected_runs=detected_all,
        false_alarms=false_alarms,
        golden_invalid=golden_invalid)
