"""Logic sharing between original and approximate circuits (Sec 3.1).

Merges approximate-circuit gates that are structurally equivalent to
original gates (same cell, same fanin signals) onto the original gate.
This trades non-intrusiveness for overhead: a fault in a shared gate
corrupts the check symbol and the function simultaneously and escapes
detection.

The paper shares *non-critical* nodes so coverage barely moves.  That
is implemented here with a criticality budget: candidate merges are
taken in ascending order of the original gate's error contribution, and
merging stops once the accumulated contribution of shared gates exceeds
the budget.
"""

from __future__ import annotations

from repro.synth.netlist import MappedNetlist


def merge_equivalent_gates(netlist: MappedNetlist, prefix: str,
                           protect: set[str],
                           criticality: dict[str, float] | None = None,
                           budget: float = float("inf")
                           ) -> dict[str, str]:
    """Merge ``prefix``-named gates onto equivalent unprefixed gates.

    ``criticality`` maps original gate names to their error
    contribution; merges whose survivor's accumulated criticality would
    exceed ``budget`` are skipped (the paper's non-critical-only
    sharing).  Returns the rename map (removed gate -> surviving
    signal).  Gates in ``protect`` are never removed.
    """
    rename: dict[str, str] = {}
    spent = 0.0
    shared_survivors: set[str] = set()
    changed = True
    while changed:
        changed = False
        canonical: dict[tuple, str] = {}
        for name in netlist.topological_order():
            if name.startswith(prefix):
                continue
            gate = netlist.gates[name]
            canonical.setdefault(
                (gate.cell.name, tuple(gate.fanins)), name)
        candidates = []
        for name in list(netlist.gates):
            if not name.startswith(prefix) or name in protect:
                continue
            gate = netlist.gates[name]
            key = (gate.cell.name, tuple(gate.fanins))
            survivor = canonical.get(key)
            if survivor is None or survivor == name:
                continue
            candidates.append((name, survivor))
        if criticality is not None:
            candidates.sort(
                key=lambda c: criticality.get(c[1], 0.0))
        for name, survivor in candidates:
            if name not in netlist.gates:
                continue  # invalidated by an earlier merge this round
            if criticality is not None and \
                    survivor not in shared_survivors:
                cost = criticality.get(survivor, 0.0)
                if spent + cost > budget:
                    continue
                spent += cost
                shared_survivors.add(survivor)
            _rewire(netlist, name, survivor)
            rename[name] = survivor
            del netlist.gates[name]
            netlist._topo_cache = None
            changed = True
    # Resolve chains (a merged gate whose survivor later merged too).
    for source in list(rename):
        target = rename[source]
        while target in rename:
            target = rename[target]
        rename[source] = target
    return rename


def _rewire(netlist: MappedNetlist, old: str, new: str) -> None:
    for gate in netlist.gates.values():
        if old in gate.fanins:
            gate.fanins = [new if f == old else f for f in gate.fanins]
    for po, signal in netlist.po_signals.items():
        if signal == old:
            netlist.po_signals[po] = new
