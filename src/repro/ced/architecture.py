"""CED circuit assembly (paper Sec 3, Fig. 2).

Combines a technology-mapped original circuit, its mapped approximate
logic circuit (the check symbol generator), per-output 0/1-approximate
checkers, and a TRC consolidation tree into one gate-level netlist.  The
original circuit's gates are untouched — the CED is non-intrusive —
except when logic sharing (Sec 3.1) is explicitly requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network import NetworkError
from repro.synth.mapping import Emitter
from repro.synth.netlist import MappedNetlist

from .checker import emit_approximate_checker, emit_trc_tree


@dataclass
class CedAssembly:
    """A complete CED circuit plus the bookkeeping to evaluate it."""

    netlist: MappedNetlist               # combined circuit
    original: MappedNetlist              # the protected circuit alone
    error_pair: tuple[str, str]          # consolidated two-rail pair
    fault_sites: list[str]               # gate names of the original
    directions: dict[str, int] = field(default_factory=dict)
    checker_pairs: dict[str, tuple[str, str]] = field(default_factory=dict)
    shared_gates: int = 0

    @property
    def overhead_gates(self) -> int:
        """Gates added on top of the original circuit."""
        return self.netlist.gate_count - len(self.fault_sites)


def clone_netlist(netlist: MappedNetlist,
                  name: str | None = None) -> MappedNetlist:
    """A deep copy preserving gate names (identity fault sites)."""
    clone = MappedNetlist(name or netlist.name, netlist.library)
    for pi in netlist.inputs:
        clone.add_input(pi)
    for gate_name in netlist.topological_order():
        gate = netlist.gates[gate_name]
        clone.add_gate(gate_name, gate.cell.name, list(gate.fanins))
    for po in netlist.outputs:
        clone.set_output(po, netlist.po_signals[po])
    return clone


def build_ced(original: MappedNetlist, approx: MappedNetlist,
              directions: dict[str, int],
              share_logic: bool = False,
              share_loss_budget: float = 0.10) -> CedAssembly:
    """Assemble the full CED circuit of Fig. 2.

    ``directions[po]`` is 0 for a 0-approximate check symbol (detects
    0->1 errors) or 1 for a 1-approximate one.  ``share_logic`` merges
    structurally equivalent approximate gates onto original gates
    (Sec 3.1) — lower overhead, intrusive, slightly lower coverage; the
    merges are restricted to non-critical gates whose combined error
    contribution stays within ``share_loss_budget`` (a fraction of the
    original circuit's total contribution).
    """
    if set(approx.outputs) - set(original.outputs):
        raise NetworkError("approximate circuit has unknown outputs")
    combined = clone_netlist(original, f"{original.name}_ced")
    fault_sites = list(original.gates)

    binding = {pi: pi for pi in approx.inputs}
    for pi in approx.inputs:
        if not combined.signal_exists(pi):
            raise NetworkError(
                f"approximate input {pi!r} is not an original input")
    mapping = combined.merge_from(approx, "apx_", binding)

    shared = 0
    if share_logic:
        from repro.reliability import error_contributions

        from .sharing import merge_equivalent_gates
        criticality = error_contributions(original, n_words=2)
        budget = share_loss_budget * sum(criticality.values())
        rename = merge_equivalent_gates(combined, prefix="apx_",
                                        protect=set(fault_sites),
                                        criticality=criticality,
                                        budget=budget)
        shared = len(rename)
        mapping = {src: rename.get(dst, dst)
                   for src, dst in mapping.items()}

    emitter = Emitter(combined)
    checker_pairs: dict[str, tuple[str, str]] = {}
    for po in original.outputs:
        if po not in directions:
            raise NetworkError(f"no approximation direction for {po!r}")
        y = combined.po_signals[po]
        x = mapping[approx.po_signals[po]]
        checker_pairs[po] = emit_approximate_checker(
            emitter, x, y, directions[po], stem=f"chk_{po}")
    error_pair = emit_trc_tree(emitter, list(checker_pairs.values()),
                               "trc")
    for i, signal in enumerate(error_pair):
        combined.set_output(f"__error{i}", signal)

    return CedAssembly(
        netlist=combined,
        original=original,
        error_pair=error_pair,
        fault_sites=fault_sites,
        directions=dict(directions),
        checker_pairs=checker_pairs,
        shared_gates=shared)


