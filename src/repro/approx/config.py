"""Configuration for approximate logic synthesis.

The thresholds here are the paper's fine-grained area-overhead vs.
CED-coverage trade-off knobs (abstract: "provides fine-grained
trade-offs between area-power overhead and CED coverage").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ApproxConfig:
    """Knobs of the synthesis algorithm (paper Sec 2.1-2.2)."""

    # -- type assignment (Sec 2.1.1) -----------------------------------
    #: A fanin whose total local observability falls below this fraction
    #: of the most observable fanin gets a DC request (rule i).
    dc_threshold: float = 0.25
    #: Guard on rule (i): a DC request additionally requires that the
    #: cubes reading the fanin carry at most this share of the node's
    #: phase-SOP probability mass.  Dropping a fanin whose cubes hold
    #: most of the function would wreck the approximation percentage
    #: even when its observability looks small relative to a dominant
    #: sibling.
    dc_mass_limit: float = 0.3
    #: Ratio of 0- to 1-observability (or vice versa) beyond which the
    #: dominant direction is requested (rule ii); otherwise EX (rule iii).
    disparity_ratio: float = 4.0
    #: When the observability ratio is inconclusive (rule iii), break
    #: the tie by which literal phase of the fanin carries more cube
    #: mass in the requesting node's phase SOP, instead of falling
    #: straight to EX.  The paper's rule (iii) always answers EX; on
    #: networks with balanced signal probabilities that freezes most of
    #: the circuit exact, so this tiebreak is on by default and
    #: disabled in the paper-literal ablation.
    phase_aware_requests: bool = True
    #: Cube-mass ratio needed for the phase-aware tiebreak to pick a
    #: direction rather than EX.
    phase_tiebreak: float = 3.0
    #: The paper applies the observability request rules uniformly,
    #: regardless of the requesting node's own type; EX nodes therefore
    #: also hand out 0/1/DC requests and rely on the repair loop.
    #: Setting this makes EX nodes conservatively request EX instead
    #: (guaranteed-correct stage 1, far less reduction) — an ablation.
    conservative_ex: bool = False

    # -- stage 1: SOP reduction (Sec 2.1.2 + Sec 2.2) --------------------
    #: Reduction strategy for type-0/1 nodes:
    #: "conformance" applies exact cube selection against the fanin
    #: types (Sec 2.1.2 — provably correct, no repair needed);
    #: "significance" freely drops low-mass cubes (Sec 2.2 stage 1 —
    #: richer, repaired afterwards); "both" (default) selects
    #: conforming cubes first and then drops insignificant ones.
    stage1: str = "both"
    #: Drop a cube when its probability mass, relative to the node's
    #: phase-function probability, is below this threshold.  Higher
    #: values give smaller approximate circuits and lower coverage.
    cube_drop_threshold: float = 0.02
    #: Replace DC-typed nodes by their most likely constant value.
    #: DC means neither minterm space is essential; collapsing the node
    #: lets the whole cone underneath it be swept away.
    collapse_dc: bool = True
    #: Apply stage-1 significance reduction to EX nodes too (the paper
    #: reduces every node; disabling avoids repair churn).
    reduce_ex_nodes: bool = True

    # -- correctness checking / repair (Sec 2.2) ------------------------
    #: "bdd" = exact implication checks on global BDDs; "sat" = exact
    #: checks with the CDCL solver (the paper's named alternative);
    #: "sim" = bit-parallel random simulation; "auto" = BDD with
    #: fallback to simulation when the node budget is exceeded.
    check: str = "auto"
    #: Node budget for the shared global-BDD manager in "auto"/"bdd".
    bdd_node_budget: int = 500_000
    #: Words (x64 vectors) for simulation-based checking.
    sim_check_words: int = 64
    #: Attempt ODC-based cube selection before exact selection in repair.
    odc_in_repair: bool = True
    #: Discharge implication checks with the repro.analyze dataflow
    #: analyses before any proving engine runs.  Static verdicts are
    #: theorems of the analyses, so results are bit-identical either
    #: way; off disables the rung (and its counters) entirely.
    static_discharge: bool = True
    #: Safety bound on check-repair rounds before restoring exact cones.
    max_repair_rounds: int = 64

    # -- shared ----------------------------------------------------------
    #: Words (x64 vectors) for signal-probability estimation.
    prob_words: int = 32
    #: Seed for every random choice in the synthesis flow.
    seed: int = 2008
    #: Opt-in static-verification guard (repro.lint) on the result:
    #: "off" skips it, "warn" attaches the lint report to the result,
    #: "strict" additionally raises LintError on error diagnostics.
    lint_level: str = "off"

    def __post_init__(self):
        if self.check not in ("bdd", "sat", "sim", "auto"):
            raise ValueError(f"unknown check method {self.check!r}")
        if self.lint_level not in ("off", "warn", "strict"):
            raise ValueError(f"unknown lint level {self.lint_level!r}")
        if self.stage1 not in ("conformance", "significance", "both"):
            raise ValueError(f"unknown stage1 strategy {self.stage1!r}")
        if not 0.0 <= self.cube_drop_threshold < 1.0:
            raise ValueError("cube_drop_threshold must be in [0, 1)")
        if self.disparity_ratio < 1.0:
            raise ValueError("disparity_ratio must be >= 1")
