"""Configuration for approximate logic synthesis.

The thresholds here are the paper's fine-grained area-overhead vs.
CED-coverage trade-off knobs (abstract: "provides fine-grained
trade-offs between area-power overhead and CED coverage").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Error metrics understood by :class:`ErrorSpec` (Mrazek,
#: arXiv:2205.03267 nomenclature): error rate, mean error distance,
#: worst-case error.
ERROR_METRICS = ("er", "med", "wce")


class ConfigError(ValueError):
    """Structured configuration error raised at construction time.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; carries a machine-readable payload the CLI
    and serve layers surface as exit 2 / HTTP 400 respectively.
    """

    def __init__(self, message: str, *, field_name: str | None = None,
                 value=None):
        super().__init__(message)
        self.message = message
        self.field = field_name
        self.value = value

    def to_dict(self) -> dict:
        doc = {"error": "config", "message": self.message}
        if self.field is not None:
            doc["field"] = self.field
        if self.value is not None:
            doc["value"] = repr(self.value)
        return doc


@dataclass(frozen=True)
class ErrorSpec:
    """Error budget for error-constrained engines (e.g. ``resub``).

    ``metric`` selects the quantity to bound:

    * ``er`` — error rate: probability (uniform inputs) that any
      primary output differs from the exact circuit; ``bound`` is a
      fraction in (0, 1].
    * ``med`` — mean error distance of the output word read as an
      unsigned integer (outputs ordered as ``network.outputs``, LSB
      first); ``bound`` is a non-negative absolute value.
    * ``wce`` — worst-case error of the same output word; ``bound`` is
      a non-negative absolute value.

    ``exact_threshold`` caps the input-count up to which metrics are
    evaluated exhaustively on the compiled simulator (2^n vectors);
    beyond it the evaluator uses exact BDD sweeps where the metric
    permits and Monte-Carlo upper bounds otherwise.
    """

    metric: str = ""
    bound: float = -1.0
    exact_threshold: int = 12

    def __post_init__(self):
        if not self.metric:
            if self.bound >= 0:
                raise ConfigError(
                    "error bound given but metric unset "
                    "(pick one of er|med|wce)",
                    field_name="error.metric", value=self.bound)
            raise ConfigError("error spec requires a metric (er|med|wce)",
                              field_name="error.metric", value=self.metric)
        if self.metric not in ERROR_METRICS:
            raise ConfigError(
                f"unknown error metric {self.metric!r} "
                f"(expected one of {', '.join(ERROR_METRICS)})",
                field_name="error.metric", value=self.metric)
        if not isinstance(self.bound, (int, float)) \
                or isinstance(self.bound, bool):
            raise ConfigError("error bound must be a number",
                              field_name="error.bound", value=self.bound)
        if self.bound < 0:
            raise ConfigError("error bound must be non-negative",
                              field_name="error.bound", value=self.bound)
        if self.metric == "er" and self.bound > 1.0:
            raise ConfigError("er bound is a probability in [0, 1]",
                              field_name="error.bound", value=self.bound)
        if not isinstance(self.exact_threshold, int) \
                or isinstance(self.exact_threshold, bool) \
                or self.exact_threshold < 0:
            raise ConfigError("exact_threshold must be a non-negative int",
                              field_name="error.exact_threshold",
                              value=self.exact_threshold)

    @classmethod
    def from_value(cls, value) -> "ErrorSpec | None":
        """Coerce ``None`` / dict / ErrorSpec into an ErrorSpec."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise ConfigError(
                    f"unknown error-spec field(s): {', '.join(unknown)}",
                    field_name="error", value=unknown)
            return cls(**value)
        raise ConfigError("error spec must be a mapping or ErrorSpec",
                          field_name="error", value=value)

    def to_dict(self) -> dict:
        return {"metric": self.metric, "bound": self.bound,
                "exact_threshold": self.exact_threshold}


@dataclass
class ApproxConfig:
    """Knobs of the synthesis algorithm (paper Sec 2.1-2.2)."""

    # -- type assignment (Sec 2.1.1) -----------------------------------
    #: A fanin whose total local observability falls below this fraction
    #: of the most observable fanin gets a DC request (rule i).
    dc_threshold: float = 0.25
    #: Guard on rule (i): a DC request additionally requires that the
    #: cubes reading the fanin carry at most this share of the node's
    #: phase-SOP probability mass.  Dropping a fanin whose cubes hold
    #: most of the function would wreck the approximation percentage
    #: even when its observability looks small relative to a dominant
    #: sibling.
    dc_mass_limit: float = 0.3
    #: Ratio of 0- to 1-observability (or vice versa) beyond which the
    #: dominant direction is requested (rule ii); otherwise EX (rule iii).
    disparity_ratio: float = 4.0
    #: When the observability ratio is inconclusive (rule iii), break
    #: the tie by which literal phase of the fanin carries more cube
    #: mass in the requesting node's phase SOP, instead of falling
    #: straight to EX.  The paper's rule (iii) always answers EX; on
    #: networks with balanced signal probabilities that freezes most of
    #: the circuit exact, so this tiebreak is on by default and
    #: disabled in the paper-literal ablation.
    phase_aware_requests: bool = True
    #: Cube-mass ratio needed for the phase-aware tiebreak to pick a
    #: direction rather than EX.
    phase_tiebreak: float = 3.0
    #: The paper applies the observability request rules uniformly,
    #: regardless of the requesting node's own type; EX nodes therefore
    #: also hand out 0/1/DC requests and rely on the repair loop.
    #: Setting this makes EX nodes conservatively request EX instead
    #: (guaranteed-correct stage 1, far less reduction) — an ablation.
    conservative_ex: bool = False

    # -- stage 1: SOP reduction (Sec 2.1.2 + Sec 2.2) --------------------
    #: Reduction strategy for type-0/1 nodes:
    #: "conformance" applies exact cube selection against the fanin
    #: types (Sec 2.1.2 — provably correct, no repair needed);
    #: "significance" freely drops low-mass cubes (Sec 2.2 stage 1 —
    #: richer, repaired afterwards); "both" (default) selects
    #: conforming cubes first and then drops insignificant ones.
    stage1: str = "both"
    #: Drop a cube when its probability mass, relative to the node's
    #: phase-function probability, is below this threshold.  Higher
    #: values give smaller approximate circuits and lower coverage.
    cube_drop_threshold: float = 0.02
    #: Replace DC-typed nodes by their most likely constant value.
    #: DC means neither minterm space is essential; collapsing the node
    #: lets the whole cone underneath it be swept away.
    collapse_dc: bool = True
    #: Apply stage-1 significance reduction to EX nodes too (the paper
    #: reduces every node; disabling avoids repair churn).
    reduce_ex_nodes: bool = True

    # -- correctness checking / repair (Sec 2.2) ------------------------
    #: "bdd" = exact implication checks on global BDDs; "sat" = exact
    #: checks with the CDCL solver (the paper's named alternative);
    #: "sim" = bit-parallel random simulation; "auto" = BDD with
    #: fallback to simulation when the node budget is exceeded.
    check: str = "auto"
    #: Node budget for the shared global-BDD manager in "auto"/"bdd".
    bdd_node_budget: int = 500_000
    #: Words (x64 vectors) for simulation-based checking.
    sim_check_words: int = 64
    #: Attempt ODC-based cube selection before exact selection in repair.
    odc_in_repair: bool = True
    #: Discharge implication checks with the repro.analyze dataflow
    #: analyses before any proving engine runs.  Static verdicts are
    #: theorems of the analyses, so results are bit-identical either
    #: way; off disables the rung (and its counters) entirely.
    static_discharge: bool = True
    #: Safety bound on check-repair rounds before restoring exact cones.
    max_repair_rounds: int = 64

    # -- engine selection (repro.approx.engine) --------------------------
    #: Registered synthesis engine.  "cube" is the paper's iterative
    #: cube-selection flow (the default, bit-identical to the seed
    #: behaviour); "resub" is the error-constrained resubstitution
    #: engine and requires ``error`` to be set.
    engine: str = "cube"
    #: Error budget for error-constrained engines; ``None`` for
    #: implication-exact engines.  Dicts are coerced to ErrorSpec so
    #: ``ApproxConfig(**json_config)`` round-trips.
    error: ErrorSpec | None = field(default=None)

    # -- shared ----------------------------------------------------------
    #: Words (x64 vectors) for signal-probability estimation.
    prob_words: int = 32
    #: Seed for every random choice in the synthesis flow.
    seed: int = 2008
    #: Opt-in static-verification guard (repro.lint) on the result:
    #: "off" skips it, "warn" attaches the lint report to the result,
    #: "strict" additionally raises LintError on error diagnostics.
    lint_level: str = "off"

    def __post_init__(self):
        if self.check not in ("bdd", "sat", "sim", "auto"):
            raise ValueError(f"unknown check method {self.check!r}")
        if self.lint_level not in ("off", "warn", "strict"):
            raise ValueError(f"unknown lint level {self.lint_level!r}")
        if self.stage1 not in ("conformance", "significance", "both"):
            raise ValueError(f"unknown stage1 strategy {self.stage1!r}")
        if not 0.0 <= self.cube_drop_threshold < 1.0:
            raise ValueError("cube_drop_threshold must be in [0, 1)")
        if self.disparity_ratio < 1.0:
            raise ValueError("disparity_ratio must be >= 1")
        self.error = ErrorSpec.from_value(self.error)
        from .engine import engine_names
        if self.engine not in engine_names():
            raise ConfigError(
                f"unknown engine {self.engine!r} "
                f"(registered: {', '.join(engine_names())})",
                field_name="engine", value=self.engine)
        if self.engine == "resub" and self.error is None:
            raise ConfigError(
                "engine 'resub' is error-constrained and requires an "
                "error spec (metric + bound)", field_name="error")
        if self.engine == "cube" and self.error is not None:
            raise ConfigError(
                "engine 'cube' is implication-exact and takes no error "
                "spec; use engine='resub' for error-constrained "
                "synthesis", field_name="error")

    @classmethod
    def from_dict(cls, values: dict) -> "ApproxConfig":
        """Strict constructor: unknown keys raise :class:`ConfigError`."""
        if not isinstance(values, dict):
            raise ConfigError("config must be a mapping", value=values)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(values) - known)
        if unknown:
            raise ConfigError(
                f"unknown config field(s): {', '.join(unknown)}",
                field_name=unknown[0], value=unknown)
        return cls(**values)
