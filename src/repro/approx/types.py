"""Type assignment: the preprocessing stage of approximate synthesis.

Every node of the multi-level network is assigned one of four types
(paper Sec 2.1.1):

* ``ONE`` — the node will be 1-approximated (its on-set shrinks);
* ``ZERO`` — the node will be 0-approximated (its off-set shrinks);
* ``EX`` — the node must stay exact;
* ``DC`` — the node's function is inessential (fanouts are expected not
  to read it after cube selection).

The pass walks the network in reverse topological order: a node is
assigned a type from the requests of its fanout nodes, then issues
requests for its own fanins based on their local observabilities.
"""

from __future__ import annotations

from enum import Enum

from repro.network import Network
from repro.sim import signal_probabilities

from .config import ApproxConfig
from .observability import local_observabilities


class NodeType(Enum):
    ZERO = "0"
    ONE = "1"
    EX = "EX"
    DC = "DC"


def resolve_type(requests: set[NodeType]) -> NodeType:
    """The paper's request-combination rules, in order."""
    if not requests:
        return NodeType.DC
    if NodeType.EX in requests:
        return NodeType.EX
    if requests == {NodeType.DC}:
        return NodeType.DC
    if requests <= {NodeType.ZERO, NodeType.DC}:
        return NodeType.ZERO
    if requests <= {NodeType.ONE, NodeType.DC}:
        return NodeType.ONE
    return NodeType.EX  # conflicting 0 and 1 requests


def fanin_requests(node_cover, fanin_probs: list[float],
                   node_type: NodeType,
                   config: ApproxConfig) -> list[NodeType]:
    """Requests a node issues to its fanins (paper rules i-iii).

    * (i) both observabilities small relative to other fanins -> DC;
    * (ii) large 0/1-observability disparity -> the dominant type;
    * (iii) comparable observabilities -> EX.

    DC nodes request DC everywhere (their function is inessential).
    The paper applies rules (i)-(iii) uniformly whatever the requesting
    node's own type; with ``config.conservative_ex`` EX nodes instead
    request EX for every fanin (correct-by-construction, less
    reduction).
    """
    n = node_cover.n
    if node_type is NodeType.DC:
        return [NodeType.DC] * n
    if node_type is NodeType.EX and config.conservative_ex:
        return [NodeType.EX] * n
    obs = local_observabilities(node_cover, fanin_probs)
    max_total = max((o.total for o in obs), default=0.0)
    mass_shares = _read_mass_shares(node_cover, fanin_probs)
    requests: list[NodeType] = []
    for i, o in enumerate(obs):
        if max_total > 0 and o.total < config.dc_threshold * max_total \
                and mass_shares[i] <= config.dc_mass_limit:
            requests.append(NodeType.DC)
        elif o.ratio >= config.disparity_ratio:
            requests.append(NodeType.ZERO)
        elif o.ratio <= 1.0 / config.disparity_ratio:
            requests.append(NodeType.ONE)
        elif config.phase_aware_requests:
            requests.append(_phase_request(node_cover, i, fanin_probs,
                                           config))
        else:
            requests.append(NodeType.EX)
    return requests


def _read_mass_shares(cover, fanin_probs: list[float]) -> list[float]:
    """Per fanin: fraction of phase-SOP mass held by cubes reading it."""
    from repro.cubes import Cover
    masses = [Cover(cover.n, [c]).probability(fanin_probs)
              for c in cover.cubes]
    total = sum(masses)
    if total <= 0:
        return [0.0] * cover.n
    shares = []
    for i in range(cover.n):
        read = sum(m for cube, m in zip(cover.cubes, masses)
                   if cube.literal(i) != "-")
        shares.append(read / total)
    return shares


def _phase_request(cover, fanin: int, fanin_probs: list[float],
                   config: ApproxConfig) -> NodeType:
    """Tiebreak rule (iii) by literal-phase cube mass.

    If the fanin's positive literals carry (say) most of the cube mass
    of the requesting node's phase SOP, a 1-approximation of the fanin
    keeps the heavy cubes selectable and only sacrifices light ones, so
    ONE is requested; symmetrically for ZERO; EX when balanced.
    """
    from repro.cubes import Cover
    mass1 = mass0 = 0.0
    for cube in cover.cubes:
        literal = cube.literal(fanin)
        if literal == "-":
            continue
        mass = Cover(cover.n, [cube]).probability(fanin_probs)
        if literal == "1":
            mass1 += mass
        else:
            mass0 += mass
    tie = config.phase_tiebreak
    if mass1 > tie * mass0:
        return NodeType.ONE
    if mass0 > tie * mass1:
        return NodeType.ZERO
    return NodeType.EX


def assign_types(network: Network, output_approximations: dict[str, int],
                 config: ApproxConfig | None = None,
                 probs: dict[str, float] | None = None
                 ) -> dict[str, NodeType]:
    """Assign a type to every internal node of ``network``.

    ``output_approximations`` maps each primary output to 0 or 1 — the
    approximation direction chosen by reliability analysis.  Outputs
    driven directly by primary inputs need no approximation and are
    skipped (the wire is exact).
    """
    config = config or ApproxConfig()
    if probs is None:
        probs = signal_probabilities(network, n_words=config.prob_words,
                                     seed=config.seed)

    requests: dict[str, set[NodeType]] = {}
    for po in network.outputs:
        if network.is_input(po):
            continue
        direction = output_approximations.get(po)
        if direction is None:
            raise ValueError(f"no approximation direction for output "
                             f"{po!r}")
        requested = NodeType.ONE if direction == 1 else NodeType.ZERO
        requests.setdefault(po, set()).add(requested)

    types: dict[str, NodeType] = {}
    for name in network.reverse_topological_order():
        node = network.nodes[name]
        node_type = resolve_type(requests.get(name, set()))
        types[name] = node_type
        if not node.fanins:
            continue
        fanin_probs = [probs[f] for f in node.fanins]
        # Requests are made against the phase SOP the node will select
        # cubes from: the off-set expression for type-0 nodes.
        cover = node.cover
        if node_type is NodeType.ZERO:
            cover = node.cover.complement().sccc()
        for fanin, request in zip(node.fanins,
                                  fanin_requests(cover, fanin_probs,
                                                 node_type, config)):
            if network.is_input(fanin):
                continue  # primary inputs are exact by definition
            requests.setdefault(fanin, set()).add(request)
    return types


def type_histogram(types: dict[str, NodeType]) -> dict[NodeType, int]:
    """Count of nodes per assigned type (reporting helper)."""
    histogram = {t: 0 for t in NodeType}
    for node_type in types.values():
        histogram[node_type] += 1
    return histogram
