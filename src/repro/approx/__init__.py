"""Approximate logic synthesis — the paper's core contribution."""

from .config import ApproxConfig, ConfigError, ErrorSpec
from .engine import (ApproxEngine, CubeSelectionEngine, engine_names,
                     get_engine, register_engine)
from .observability import (LocalObservability, local_observabilities,
                            local_odc_cover, observability_bdds)
from .types import (NodeType, assign_types, fanin_requests, resolve_type,
                    type_histogram)
from .cube_selection import (conforms, exact_select, feasible_subspace,
                             implement_phase, odc_select,
                             odc_select_from_sop, phase_cover)
from .iterative import ApproxResult, synthesize_approximation
from .metrics import (ErrorEvaluation, approximation_percentage,
                      approximation_percentages, area_overhead,
                      delay_change_pct, evaluate_error,
                      mean_approximation_percentage,
                      power_overhead_pct)

__all__ = [
    "ApproxConfig", "ApproxEngine", "ApproxResult", "ConfigError",
    "CubeSelectionEngine", "ErrorEvaluation", "ErrorSpec",
    "LocalObservability", "NodeType",
    "approximation_percentage", "approximation_percentages",
    "area_overhead", "assign_types",
    "conforms", "delay_change_pct", "engine_names", "evaluate_error",
    "exact_select", "fanin_requests",
    "feasible_subspace", "get_engine", "implement_phase",
    "local_observabilities",
    "local_odc_cover", "mean_approximation_percentage",
    "observability_bdds", "odc_select", "odc_select_from_sop",
    "phase_cover", "power_overhead_pct", "register_engine",
    "resolve_type", "synthesize_approximation", "type_histogram",
]
