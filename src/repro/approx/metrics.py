"""Metrics for approximate circuits.

*Approximation percentage* (paper Sec 2): the fraction of minterms of
the exact function's protected minterm space that the approximate
function covers — 1-minterms under a 1-approximation, 0-minterms under a
0-approximation — optionally weighted by input probabilities.

*Area / power / delay overheads* compare mapped netlists, matching the
paper's Table 1/2 reporting (area = gate count, power = switching
activity, delay = critical path).

*Error metrics* (:func:`evaluate_error`): ER / MED / WCE of an
approximate network against the exact one, for the error-constrained
engines.  Two-tier evaluation: exact — exhaustive simulation on the
compiled batched simulator up to ``exact_threshold`` inputs, exact BDD
``sat_count`` sweeps beyond it where the metric permits — and
Monte-Carlo upper bounds (Hoeffding) on the simulator when the BDDs
overflow their node budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bdd import BddOverflowError
from repro.flow import AnalysisContext
from repro.network import GlobalBdds, Network, dfs_input_order
from repro.sim import get_simulator, popcount, switching_activity
from repro.synth.netlist import MappedNetlist


def approximation_percentage(original: Network, approx: Network,
                             output: str, direction: int,
                             method: str = "auto",
                             bdd_node_budget: int = 500_000,
                             n_words: int = 256,
                             seed: int = 2008,
                             ctx: AnalysisContext | None = None) -> float:
    """Approximation percentage of one output, in percent.

    For a 1-approximation G of F: ``100 * |G & F| / |F|``; for a
    0-approximation: ``100 * |!G & !F| / |!F|``.  Inputs are uniform
    (the paper's assumption).  ``method`` is "bdd", "sim", or "auto".
    ``ctx`` reuses a shared pair-BDD manager (bit-identical results).
    """
    if method not in ("bdd", "sim", "auto"):
        raise ValueError(f"unknown method {method!r}")
    if method in ("bdd", "auto"):
        try:
            return _approx_pct_bdd(original, approx, output, direction,
                                   bdd_node_budget, ctx)
        except BddOverflowError:
            if method == "bdd":
                raise
    return _approx_pct_sim(original, approx, output, direction, n_words,
                           seed)


def _pair_bdds(original, approx, budget, ctx):
    if ctx is not None:
        return ctx.pair_bdds(original, approx, budget)
    bdds = GlobalBdds(dfs_input_order(original), max_nodes=budget)
    bdds.add_network(original, prefix="o_")
    bdds.add_network(approx, prefix="a_")
    return bdds


def _approx_pct_bdd(original, approx, output, direction, budget,
                    ctx=None) -> float:
    bdds = _pair_bdds(original, approx, budget, ctx)
    mgr = bdds.manager
    prefix_o = "" if original.is_input(output) else "o_"
    prefix_a = "" if approx.is_input(output) else "a_"
    f = bdds.function(prefix_o + output)
    g = bdds.function(prefix_a + output)
    if direction == 0:
        f, g = mgr.not_(f), mgr.not_(g)
    denom = mgr.probability(f)
    if denom == 0.0:
        return 100.0
    return 100.0 * mgr.probability(mgr.and_(f, g)) / denom


def _approx_pct_sim(original, approx, output, direction, n_words,
                    seed) -> float:
    sim_o = get_simulator(original)
    sim_a = get_simulator(approx)
    rng = np.random.default_rng(seed)
    pi = sim_o.random_inputs(rng, n_words)
    reorder = [original.inputs.index(p) for p in sim_a.input_names]
    vo = sim_o.run(pi)[sim_o.index[output]]
    va = sim_a.run(pi[reorder])[sim_a.index[output]]
    if direction == 0:
        vo, va = ~vo, ~va
    denom = popcount(vo)
    if denom == 0:
        return 100.0
    return 100.0 * popcount(vo & va) / denom


def approximation_percentages(original: Network, approx: Network,
                              directions: dict[str, int],
                              method: str = "auto",
                              bdd_node_budget: int = 500_000,
                              n_words: int = 256,
                              seed: int = 2008,
                              ctx: AnalysisContext | None = None
                              ) -> dict[str, float]:
    """Approximation percentage of every output, sharing one manager.

    Far cheaper than calling :func:`approximation_percentage` per
    output: the global BDDs (or the simulation run) are built once.
    With ``ctx``, the manager is additionally shared with the synthesis
    checker and lint prover across the whole flow.
    """
    if method in ("bdd", "auto"):
        # Content-addressed pct cache: a warm run whose cone pairs are
        # unchanged serves every percentage without touching a manager.
        proofs = getattr(ctx, "proofs", None)
        fingerprints = None
        cached_pcts: dict[str, float] = {}
        if proofs is not None:
            from repro.lab.proofs import ConeFingerprinter, pct_key
            fingerprints = ConeFingerprinter()
            for po, direction in directions.items():
                key = pct_key(fingerprints, original, approx, po,
                              1 if direction == 1 else 0)
                entry = proofs.get(key)
                if entry is not None \
                        and entry.get("kind") == "approx_pct":
                    cached_pcts[po] = float(entry["pct"])
        todo = [po for po in directions if po not in cached_pcts]
        if not todo:
            return {po: cached_pcts[po] for po in directions}
        try:
            bdds = _pair_bdds(original, approx, bdd_node_budget, ctx)
            mgr = bdds.manager
            fs, gs = [], []
            for po in todo:
                prefix_o = "" if original.is_input(po) else "o_"
                prefix_a = "" if approx.is_input(po) else "a_"
                f = bdds.function(prefix_o + po)
                g = bdds.function(prefix_a + po)
                if directions[po] == 0:
                    f, g = mgr.not_(f), mgr.not_(g)
                fs.append(f)
                gs.append(g)
            covered = [mgr.and_(f, g) for f, g in zip(fs, gs)]
            # One whole-table sweep on the numpy engine; the scalar
            # fallback computes each probability exactly as before.
            probs = mgr.probability_many(fs + covered)
            result = dict(cached_pcts)
            for i, po in enumerate(todo):
                denom = probs[i]
                pct = 100.0 if denom == 0.0 else \
                    100.0 * probs[len(todo) + i] / denom
                result[po] = pct
                if proofs is not None:
                    key = pct_key(fingerprints, original, approx, po,
                                  1 if directions[po] == 1 else 0)
                    proofs.put(key, {"kind": "approx_pct", "po": po,
                                     "pct": pct, "engine": "bdd"})
            return {po: result[po] for po in directions}
        except BddOverflowError:
            if method == "bdd":
                raise
    sim_o = get_simulator(original)
    sim_a = get_simulator(approx)
    rng = np.random.default_rng(seed)
    pi = sim_o.random_inputs(rng, n_words)
    reorder = [original.inputs.index(p) for p in sim_a.input_names]
    values_o = sim_o.run(pi)
    values_a = sim_a.run(pi[reorder])
    result = {}
    for po, direction in directions.items():
        vo = values_o[sim_o.index[po]]
        va = values_a[sim_a.index[po]]
        if direction == 0:
            vo, va = ~vo, ~va
        denom = popcount(vo)
        result[po] = 100.0 if denom == 0 else \
            100.0 * popcount(vo & va) / denom
    return result


def mean_approximation_percentage(original: Network, approx: Network,
                                  directions: dict[str, int],
                                  **kwargs) -> float:
    """Average approximation percentage over all primary outputs."""
    pcts = approximation_percentages(original, approx, directions,
                                     **kwargs)
    return sum(pcts.values()) / len(pcts) if pcts else 100.0


# ----------------------------------------------------------------------
# Error metrics (ER / MED / WCE) for error-constrained engines
# ----------------------------------------------------------------------
#: One-sided confidence for Monte-Carlo upper bounds (Hoeffding).
MC_CONFIDENCE = 0.999


@dataclass
class ErrorEvaluation:
    """Result of one error-metric evaluation.

    ``value`` is the metric's measured value when ``exact``, otherwise
    an upper bound: mathematically sound when ``sound`` (BDD-derived
    MED/WCE bounds, structural WCE bounds), statistical at
    ``confidence`` otherwise (Monte-Carlo tiers).  ``per_output`` maps
    every PO to its bit-difference rate (a fraction);
    ``per_output_counts`` additionally gives the exact rate as integer
    ``(count, total)`` pairs when an exact tier ran.
    """

    metric: str
    value: float
    bound: float
    exact: bool
    sound: bool
    method: str
    confidence: float = 1.0
    per_output: dict[str, float] = field(default_factory=dict)
    per_output_counts: dict[str, tuple[int, int]] | None = None
    weights: dict[str, int] = field(default_factory=dict)
    #: Evaluation work performed (vectors simulated, tier taken) —
    #: reported to the flow trace as error budget spent.
    work: dict = field(default_factory=dict)

    @property
    def within(self) -> bool:
        """Conservative verdict: the (bounded) value meets the bound."""
        return self.value <= self.bound

    def to_dict(self) -> dict:
        doc = {
            "metric": self.metric,
            "value": float(self.value),
            "bound": float(self.bound),
            "within": bool(self.within),
            "exact": bool(self.exact),
            "sound": bool(self.sound),
            "method": self.method,
            "confidence": float(self.confidence),
            "per_output": {po: float(r)
                           for po, r in self.per_output.items()},
            "weights": {po: int(w) for po, w in self.weights.items()},
            "budget_spent": dict(self.work),
        }
        if self.per_output_counts is not None:
            doc["per_output_counts"] = {
                po: [int(c), int(t)]
                for po, (c, t) in self.per_output_counts.items()}
        return doc


def exhaustive_inputs(n_inputs: int) -> np.ndarray:
    """All ``2^n`` input vectors, bit-packed: shape ``(n, words)``.

    Vector ``v`` lives at word ``v // 64``, bit ``v % 64``; input ``i``
    of vector ``v`` is ``(v >> i) & 1``.
    """
    n_words = 1 << max(n_inputs - 6, 0)
    rows = np.empty((n_inputs, n_words), dtype=np.uint64)
    w = np.arange(n_words, dtype=np.uint64)
    for i in range(min(n_inputs, 6)):
        const = np.uint64(0)
        for b in range(64):
            if (b >> i) & 1:
                const |= np.uint64(1) << np.uint64(b)
        rows[i] = const
    for i in range(6, n_inputs):
        rows[i] = np.where(
            (w >> np.uint64(i - 6)) & np.uint64(1),
            np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(0))
    return rows


def _unpack_bits(words: np.ndarray, n_vectors: int) -> np.ndarray:
    """Word array -> 0/1 array of length ``n_vectors`` (v = w*64+b)."""
    shifts = np.arange(64, dtype=np.uint64)
    bits = (words[:, None] >> shifts[None, :]) & np.uint64(1)
    return bits.reshape(-1)[:n_vectors].astype(np.int64)


def _error_words(original: Network, approx: Network,
                 pi_words: np.ndarray, n_vectors: int,
                 magnitudes: bool = True):
    """Per-PO diff bits and integer error magnitudes for a vector set.

    Returns ``(diff_counts, any_count, abs_err)`` where ``abs_err`` is
    an object-dtype array of arbitrary-precision ``|O - A|`` values
    (outputs read as an unsigned integer, ``original.outputs`` order,
    LSB first), or None with ``magnitudes=False`` (ER needs none).
    """
    sim_o = get_simulator(original)
    sim_a = get_simulator(approx)
    reorder = [original.inputs.index(p) for p in sim_a.input_names]
    values_o = sim_o.run(pi_words)
    values_a = sim_a.run(pi_words[reorder])
    diff_counts: dict[str, int] = {}
    any_diff = np.zeros(pi_words.shape[1], dtype=np.uint64)
    err = np.zeros(n_vectors, dtype=object) if magnitudes else None
    for i, po in enumerate(original.outputs):
        vo = values_o[sim_o.index[po]]
        va = values_a[sim_a.index[po]]
        delta = vo ^ va
        any_diff |= delta
        delta_bits = _unpack_bits(delta, n_vectors)
        diff_counts[po] = int(np.count_nonzero(delta_bits))
        if magnitudes:
            signed = (_unpack_bits(vo, n_vectors)
                      - _unpack_bits(va, n_vectors)).astype(object)
            err = err + signed * (1 << i)
    # Mask bits beyond n_vectors before counting whole-word diffs.
    any_bits = _unpack_bits(any_diff, n_vectors)
    return (diff_counts, int(np.count_nonzero(any_bits)),
            np.abs(err) if magnitudes else None)


def _identical_cones(original: Network, approx: Network) -> set[str]:
    """POs whose cone is byte-identical in both networks.

    A sound zero-rate filter for the Monte-Carlo tier: an untouched
    cone cannot differ on any vector.
    """
    from repro.lab.proofs import ConeFingerprinter
    fp = ConeFingerprinter()
    return {po for po in original.outputs
            if fp.cone(original, po) == fp.cone(approx, po)}


def _eval_exhaustive(original, approx, spec, weights) -> ErrorEvaluation:
    n = len(original.inputs)
    n_vectors = 1 << n
    pi = exhaustive_inputs(n)
    diff_counts, any_count, abs_err = _error_words(
        original, approx, pi, n_vectors,
        magnitudes=spec.metric != "er")
    per_output = {po: diff_counts[po] / n_vectors
                  for po in original.outputs}
    counts = {po: (diff_counts[po], n_vectors)
              for po in original.outputs}
    if spec.metric == "er":
        value = any_count / n_vectors
    elif spec.metric == "med":
        value = float(sum(abs_err)) / n_vectors
    else:  # wce
        value = float(max(abs_err, default=0))
    return ErrorEvaluation(
        metric=spec.metric, value=value, bound=spec.bound, exact=True,
        sound=True, method="exhaustive", per_output=per_output,
        per_output_counts=counts, weights=weights,
        work={"vectors": n_vectors, "tier": "exhaustive"})


def _eval_bdd(original, approx, spec, weights, node_budget,
              ctx) -> ErrorEvaluation:
    # Content-addressed per-PO difference rates: warm runs over
    # unchanged cone pairs serve exact counts without a manager (the
    # aggregate er probability still needs one, so the short-circuit
    # only fires for the bounded med/wce metrics).
    proofs = getattr(ctx, "proofs", None)
    fingerprints = None
    cached: dict[str, tuple[int, int]] = {}
    if proofs is not None:
        from repro.lab.proofs import ConeFingerprinter, error_key
        fingerprints = ConeFingerprinter()
        for po in original.outputs:
            key = error_key(fingerprints, original, approx, po,
                            "diff-rate", engine="resub")
            entry = proofs.get(key)
            if entry is not None and entry.get("kind") == "error_metric":
                cached[po] = (int(entry["count"]), int(entry["total"]))
    if spec.metric != "er" and len(cached) == len(original.outputs):
        total = max(t for _, t in cached.values())
        counts = {po: (c * (total // t), total)
                  for po, (c, t) in cached.items()}
        per_output = {po: c / t for po, (c, t) in counts.items()}
        work = {"tier": "bdd", "cached_outputs": len(cached)}
    else:
        bdds = _pair_bdds(original, approx, node_budget, ctx)
        mgr = bdds.manager
        xors = []
        for po in original.outputs:
            prefix_o = "" if original.is_input(po) else "o_"
            prefix_a = "" if approx.is_input(po) else "a_"
            xors.append(mgr.xor_(bdds.function(prefix_o + po),
                                 bdds.function(prefix_a + po)))
        total = 1 << mgr.num_vars
        sat_counts = [int(c) for c in mgr.sat_count_many(xors)]
        per_output = {po: sat_counts[i] / total
                      for i, po in enumerate(original.outputs)}
        counts = {po: (sat_counts[i], total)
                  for i, po in enumerate(original.outputs)}
        work = {"tier": "bdd", "bdd_vars": mgr.num_vars,
                "cached_outputs": len(cached)}
        if proofs is not None:
            for po in original.outputs:
                if po in cached:
                    continue
                key = error_key(fingerprints, original, approx, po,
                                "diff-rate", engine="resub")
                proofs.put(key, {"kind": "error_metric", "po": po,
                                 "metric": "diff-rate",
                                 "count": counts[po][0],
                                 "total": counts[po][1],
                                 "engine": "bdd"})
    if spec.metric == "er":
        value = mgr.sat_count(mgr.or_many(xors)) / total
        exact = True
        method = "bdd"
    elif spec.metric == "med":
        # Sound bound: |O - A| <= sum_i 2^i |o_i - a_i|, so
        # E|O - A| <= sum_i 2^i * r_i.
        value = float(sum(weights[po] * per_output[po]
                          for po in original.outputs))
        exact = False
        method = "bdd-bound"
    else:  # wce: every never-differing bit contributes nothing.
        value = float(sum(weights[po] for po in original.outputs
                          if per_output[po] > 0.0))
        exact = False
        method = "bdd-bound"
    return ErrorEvaluation(
        metric=spec.metric, value=value, bound=spec.bound, exact=exact,
        sound=True, method=method, per_output=per_output,
        per_output_counts=counts, weights=weights, work=work)


def _eval_mc(original, approx, spec, weights, n_words,
             seed) -> ErrorEvaluation:
    sim_o = get_simulator(original)
    rng = np.random.default_rng(seed)
    pi = sim_o.random_inputs(rng, n_words)
    n_vectors = 64 * n_words
    diff_counts, any_count, abs_err = _error_words(
        original, approx, pi, n_vectors, magnitudes=False)
    # A byte-identical cone has rate exactly 0 — no statistical slack.
    frozen = _identical_cones(original, approx)
    per_output = {po: diff_counts[po] / n_vectors
                  for po in original.outputs}
    live = [po for po in original.outputs if po not in frozen]
    delta = 1.0 - MC_CONFIDENCE
    if spec.metric == "er":
        eps = math.sqrt(math.log(1.0 / delta) / (2.0 * n_vectors))
        value = min(any_count / n_vectors + (eps if live else 0.0), 1.0)
    elif spec.metric == "med":
        # Union bound over the live POs' Hoeffding intervals, then the
        # linear MED bound over the bounded per-PO rates.
        eps = math.sqrt(math.log(max(len(live), 1) / delta)
                        / (2.0 * n_vectors))
        value = float(sum(
            weights[po] * min(per_output[po]
                              + (eps if po in live else 0.0), 1.0)
            for po in original.outputs))
    else:  # wce: structural bound — only touched cones can ever differ.
        value = float(sum(weights[po] for po in live))
    return ErrorEvaluation(
        metric=spec.metric, value=value, bound=spec.bound, exact=False,
        sound=spec.metric == "wce", method="mc",
        confidence=1.0 if spec.metric == "wce" else MC_CONFIDENCE,
        per_output=per_output, weights=weights,
        work={"vectors": n_vectors, "tier": "mc",
              "frozen_outputs": len(frozen)})


def evaluate_error(original: Network, approx: Network, spec,
                   bdd_node_budget: int = 500_000,
                   n_words: int = 256, seed: int = 2008,
                   ctx: AnalysisContext | None = None,
                   budget=None) -> ErrorEvaluation:
    """ER / MED / WCE of ``approx`` against ``original``.

    Two tiers: exact — exhaustive simulation when the input count is at
    most ``spec.exact_threshold``, exact BDD ``sat_count`` sweeps
    beyond it (ER stays exact; MED/WCE become sound upper bounds from
    per-PO difference rates) — and Monte-Carlo upper bounds on the
    compiled simulator when the BDDs overflow.  ``budget`` threads the
    guard: the BDD node cap is merged, the deadline is polled, and a
    forced fall to simulation is recorded as a degradation rung.
    """
    if list(original.outputs) != list(approx.outputs):
        raise ValueError("error metrics need matching output lists")
    weights = {po: 1 << i for i, po in enumerate(original.outputs)}
    if budget is not None:
        budget.check_deadline("error-metrics")
    if len(original.inputs) <= spec.exact_threshold:
        evaluation = _eval_exhaustive(original, approx, spec, weights)
    else:
        cap = bdd_node_budget if budget is None \
            else budget.bdd_cap(bdd_node_budget)
        try:
            evaluation = _eval_bdd(original, approx, spec, weights, cap,
                                   ctx)
        except BddOverflowError:
            if budget is not None:
                budget.report.rung("sim", "selected",
                                   where="error-metrics",
                                   reason="bdd-overflow")
                budget.check_deadline("error-metrics")
            evaluation = _eval_mc(original, approx, spec, weights,
                                  n_words, seed)
    # The tier split must be reproducible offline (certificates).
    evaluation.work["exact_threshold"] = spec.exact_threshold
    return evaluation


def area_overhead(original: MappedNetlist,
                  extra_gates: int | MappedNetlist) -> float:
    """Extra gates as a percentage of the original gate count."""
    extra = extra_gates.gate_count if isinstance(extra_gates,
                                                 MappedNetlist) \
        else extra_gates
    if original.gate_count == 0:
        return 0.0
    return 100.0 * extra / original.gate_count


def power_overhead_pct(original: MappedNetlist, combined,
                       n_words: int = 16, seed: int = 2008) -> float:
    """Extra switching activity as a percentage of the original's."""
    base = switching_activity(original, n_words=n_words, seed=seed)
    total = switching_activity(combined, n_words=n_words, seed=seed)
    if base <= 0:
        return 0.0
    return 100.0 * (total - base) / base


def delay_change_pct(original: MappedNetlist,
                     other: MappedNetlist) -> float:
    """Critical-path delay of ``other`` relative to ``original``, in %.

    Negative values mean the other circuit is faster (the paper reports
    approximate circuits 38% faster on average and parity predictors
    51% slower).
    """
    base = original.delay()
    if base <= 0:
        return 0.0
    return 100.0 * (other.delay() - base) / base
