"""Metrics for approximate circuits.

*Approximation percentage* (paper Sec 2): the fraction of minterms of
the exact function's protected minterm space that the approximate
function covers — 1-minterms under a 1-approximation, 0-minterms under a
0-approximation — optionally weighted by input probabilities.

*Area / power / delay overheads* compare mapped netlists, matching the
paper's Table 1/2 reporting (area = gate count, power = switching
activity, delay = critical path).
"""

from __future__ import annotations

import numpy as np

from repro.bdd import BddOverflowError
from repro.flow import AnalysisContext
from repro.network import GlobalBdds, Network, dfs_input_order
from repro.sim import get_simulator, popcount, switching_activity
from repro.synth.netlist import MappedNetlist


def approximation_percentage(original: Network, approx: Network,
                             output: str, direction: int,
                             method: str = "auto",
                             bdd_node_budget: int = 500_000,
                             n_words: int = 256,
                             seed: int = 2008,
                             ctx: AnalysisContext | None = None) -> float:
    """Approximation percentage of one output, in percent.

    For a 1-approximation G of F: ``100 * |G & F| / |F|``; for a
    0-approximation: ``100 * |!G & !F| / |!F|``.  Inputs are uniform
    (the paper's assumption).  ``method`` is "bdd", "sim", or "auto".
    ``ctx`` reuses a shared pair-BDD manager (bit-identical results).
    """
    if method not in ("bdd", "sim", "auto"):
        raise ValueError(f"unknown method {method!r}")
    if method in ("bdd", "auto"):
        try:
            return _approx_pct_bdd(original, approx, output, direction,
                                   bdd_node_budget, ctx)
        except BddOverflowError:
            if method == "bdd":
                raise
    return _approx_pct_sim(original, approx, output, direction, n_words,
                           seed)


def _pair_bdds(original, approx, budget, ctx):
    if ctx is not None:
        return ctx.pair_bdds(original, approx, budget)
    bdds = GlobalBdds(dfs_input_order(original), max_nodes=budget)
    bdds.add_network(original, prefix="o_")
    bdds.add_network(approx, prefix="a_")
    return bdds


def _approx_pct_bdd(original, approx, output, direction, budget,
                    ctx=None) -> float:
    bdds = _pair_bdds(original, approx, budget, ctx)
    mgr = bdds.manager
    prefix_o = "" if original.is_input(output) else "o_"
    prefix_a = "" if approx.is_input(output) else "a_"
    f = bdds.function(prefix_o + output)
    g = bdds.function(prefix_a + output)
    if direction == 0:
        f, g = mgr.not_(f), mgr.not_(g)
    denom = mgr.probability(f)
    if denom == 0.0:
        return 100.0
    return 100.0 * mgr.probability(mgr.and_(f, g)) / denom


def _approx_pct_sim(original, approx, output, direction, n_words,
                    seed) -> float:
    sim_o = get_simulator(original)
    sim_a = get_simulator(approx)
    rng = np.random.default_rng(seed)
    pi = sim_o.random_inputs(rng, n_words)
    reorder = [original.inputs.index(p) for p in sim_a.input_names]
    vo = sim_o.run(pi)[sim_o.index[output]]
    va = sim_a.run(pi[reorder])[sim_a.index[output]]
    if direction == 0:
        vo, va = ~vo, ~va
    denom = popcount(vo)
    if denom == 0:
        return 100.0
    return 100.0 * popcount(vo & va) / denom


def approximation_percentages(original: Network, approx: Network,
                              directions: dict[str, int],
                              method: str = "auto",
                              bdd_node_budget: int = 500_000,
                              n_words: int = 256,
                              seed: int = 2008,
                              ctx: AnalysisContext | None = None
                              ) -> dict[str, float]:
    """Approximation percentage of every output, sharing one manager.

    Far cheaper than calling :func:`approximation_percentage` per
    output: the global BDDs (or the simulation run) are built once.
    With ``ctx``, the manager is additionally shared with the synthesis
    checker and lint prover across the whole flow.
    """
    if method in ("bdd", "auto"):
        # Content-addressed pct cache: a warm run whose cone pairs are
        # unchanged serves every percentage without touching a manager.
        proofs = getattr(ctx, "proofs", None)
        fingerprints = None
        cached_pcts: dict[str, float] = {}
        if proofs is not None:
            from repro.lab.proofs import ConeFingerprinter, pct_key
            fingerprints = ConeFingerprinter()
            for po, direction in directions.items():
                key = pct_key(fingerprints, original, approx, po,
                              1 if direction == 1 else 0)
                entry = proofs.get(key)
                if entry is not None \
                        and entry.get("kind") == "approx_pct":
                    cached_pcts[po] = float(entry["pct"])
        todo = [po for po in directions if po not in cached_pcts]
        if not todo:
            return {po: cached_pcts[po] for po in directions}
        try:
            bdds = _pair_bdds(original, approx, bdd_node_budget, ctx)
            mgr = bdds.manager
            fs, gs = [], []
            for po in todo:
                prefix_o = "" if original.is_input(po) else "o_"
                prefix_a = "" if approx.is_input(po) else "a_"
                f = bdds.function(prefix_o + po)
                g = bdds.function(prefix_a + po)
                if directions[po] == 0:
                    f, g = mgr.not_(f), mgr.not_(g)
                fs.append(f)
                gs.append(g)
            covered = [mgr.and_(f, g) for f, g in zip(fs, gs)]
            # One whole-table sweep on the numpy engine; the scalar
            # fallback computes each probability exactly as before.
            probs = mgr.probability_many(fs + covered)
            result = dict(cached_pcts)
            for i, po in enumerate(todo):
                denom = probs[i]
                pct = 100.0 if denom == 0.0 else \
                    100.0 * probs[len(todo) + i] / denom
                result[po] = pct
                if proofs is not None:
                    key = pct_key(fingerprints, original, approx, po,
                                  1 if directions[po] == 1 else 0)
                    proofs.put(key, {"kind": "approx_pct", "po": po,
                                     "pct": pct, "engine": "bdd"})
            return {po: result[po] for po in directions}
        except BddOverflowError:
            if method == "bdd":
                raise
    sim_o = get_simulator(original)
    sim_a = get_simulator(approx)
    rng = np.random.default_rng(seed)
    pi = sim_o.random_inputs(rng, n_words)
    reorder = [original.inputs.index(p) for p in sim_a.input_names]
    values_o = sim_o.run(pi)
    values_a = sim_a.run(pi[reorder])
    result = {}
    for po, direction in directions.items():
        vo = values_o[sim_o.index[po]]
        va = values_a[sim_a.index[po]]
        if direction == 0:
            vo, va = ~vo, ~va
        denom = popcount(vo)
        result[po] = 100.0 if denom == 0 else \
            100.0 * popcount(vo & va) / denom
    return result


def mean_approximation_percentage(original: Network, approx: Network,
                                  directions: dict[str, int],
                                  **kwargs) -> float:
    """Average approximation percentage over all primary outputs."""
    pcts = approximation_percentages(original, approx, directions,
                                     **kwargs)
    return sum(pcts.values()) / len(pcts) if pcts else 100.0


def area_overhead(original: MappedNetlist,
                  extra_gates: int | MappedNetlist) -> float:
    """Extra gates as a percentage of the original gate count."""
    extra = extra_gates.gate_count if isinstance(extra_gates,
                                                 MappedNetlist) \
        else extra_gates
    if original.gate_count == 0:
        return 0.0
    return 100.0 * extra / original.gate_count


def power_overhead_pct(original: MappedNetlist, combined,
                       n_words: int = 16, seed: int = 2008) -> float:
    """Extra switching activity as a percentage of the original's."""
    base = switching_activity(original, n_words=n_words, seed=seed)
    total = switching_activity(combined, n_words=n_words, seed=seed)
    if base <= 0:
        return 0.0
    return 100.0 * (total - base) / base


def delay_change_pct(original: MappedNetlist,
                     other: MappedNetlist) -> float:
    """Critical-path delay of ``other`` relative to ``original``, in %.

    Negative values mean the other circuit is faster (the paper reports
    approximate circuits 38% faster on average and parity predictors
    51% slower).
    """
    base = original.delay()
    if base <= 0:
        return 0.0
    return 100.0 * (other.delay() - base) / base
