"""Error-constrained resubstitution engine (``engine="resub"``).

Unlike the paper's cube-selection flow — which keeps every primary
output implication-correct and trades only *coverage* — this engine
deliberately changes output functions, as long as the measured error
stays within an :class:`~repro.approx.config.ErrorSpec` budget
(SGALS-style simulation-guided greedy search, arXiv:2505.16769, over
the ER/MED/WCE metrics of arXiv:2205.03267).

The candidate -> score -> commit/rollback loop:

1. *Propose*: simulation signatures nominate rewrites — nodes that are
   almost constant (const-0/1 replacement), signal pairs with equal or
   complementary signatures (wire resubstitution).  Candidates are
   ordered by estimated freed cone size.
2. *Score*: each candidate is applied tentatively and the error metric
   is re-estimated with a cheap screening evaluation (exhaustive on
   small input spaces, bit-parallel sampling otherwise); candidates
   that blow the budget roll back immediately via
   :meth:`~repro.network.Network.replace_node` (which also rejects
   cycle-creating rewires).
3. *Validate*: the surviving network is measured with the two-tier
   evaluator (:func:`~repro.approx.metrics.evaluate_error`); while the
   conservative value exceeds the bound, commits are undone in reverse
   order — at zero commits the error is zero, so the final result
   always satisfies the bound.

The bound guarantee therefore never rests on the screening estimates.
"""

from __future__ import annotations

import numpy as np

from repro.network import Network
from repro.cubes import Cover
from repro.sim import get_simulator, popcount

from .engine import ApproxEngine


#: Screening cap: candidates tried per synthesis run.
MAX_CANDIDATES = 128

#: Near-constant nomination threshold on the signature one-rate.
CONST_RATE = 0.25


class _Candidate:
    __slots__ = ("target", "fanins", "cover", "est_rate", "gain", "kind")

    def __init__(self, target, fanins, cover, est_rate, gain, kind):
        self.target = target
        self.fanins = fanins
        self.cover = cover
        self.est_rate = est_rate
        self.gain = gain
        self.kind = kind


def _signatures(network: Network, n_words: int, seed: int):
    sim = get_simulator(network)
    rng = np.random.default_rng(seed)
    pi = sim.random_inputs(rng, n_words)
    values = sim.run(pi)
    return sim, values


def _propose(network: Network, n_words: int,
             seed: int) -> list[_Candidate]:
    """Signature-nominated rewrite candidates, best first."""
    sim, values = _signatures(network, n_words, seed)
    total = 64 * n_words
    cone_sizes = {name: len(network.transitive_fanin([name]))
                  for name in network.nodes}
    by_sig: dict[bytes, str] = {}
    order = network.topological_order()
    candidates: list[_Candidate] = []
    for name in order:
        sig = values[sim.index[name]]
        ones = popcount(sig)
        rate = ones / total
        gain = cone_sizes[name]
        if rate <= CONST_RATE:
            candidates.append(_Candidate(
                name, [], Cover.zero(0), rate, gain, "const0"))
        if 1.0 - rate <= CONST_RATE:
            candidates.append(_Candidate(
                name, [], Cover.one(0), 1.0 - rate, gain, "const1"))
        key = sig.tobytes()
        inv_key = (~sig).tobytes()
        # Earlier (topologically) signal with the same signature: a
        # rewire candidate with estimated rate 0 (cycle-free because
        # the donor precedes the target).
        donor = by_sig.get(key)
        if donor is not None and donor != name:
            candidates.append(_Candidate(
                name, [donor], Cover.literal(1, 0, 1), 0.0, gain,
                "resub"))
        donor = by_sig.get(inv_key)
        if donor is not None and donor != name:
            candidates.append(_Candidate(
                name, [donor], Cover.literal(1, 0, 0), 0.0, gain,
                "resub-inv"))
        by_sig.setdefault(key, name)
    for pi_name in network.inputs:
        by_sig.setdefault(
            values[sim.index[pi_name]].tobytes(), pi_name)
    candidates.sort(key=lambda c: (c.est_rate, -c.gain, c.target,
                                   c.kind))
    return candidates[:MAX_CANDIDATES]


def _screen_value(original: Network, approx: Network, spec,
                  n_words: int, seed: int) -> float:
    """Cheap (possibly unsound) metric estimate for candidate scoring."""
    from .metrics import _error_words, exhaustive_inputs
    n = len(original.inputs)
    if n <= spec.exact_threshold:
        pi = exhaustive_inputs(n)
        n_vectors = 1 << n
    else:
        sim_o = get_simulator(original)
        rng = np.random.default_rng(seed)
        pi = sim_o.random_inputs(rng, n_words)
        n_vectors = 64 * n_words
    diff_counts, any_count, _ = _error_words(
        original, approx, pi, n_vectors, magnitudes=False)
    if spec.metric == "er":
        return any_count / n_vectors
    rates = {po: diff_counts[po] / n_vectors for po in original.outputs}
    if spec.metric == "med":
        return float(sum((1 << i) * rates[po]
                         for i, po in enumerate(original.outputs)))
    return float(sum((1 << i) for i, po in enumerate(original.outputs)
                     if rates[po] > 0.0))


class ResubEngine(ApproxEngine):
    """Greedy error-constrained resubstitution under an ErrorSpec."""

    name = "resub"

    def synthesize(self, network: Network, directions: dict[str, int],
                   config, ctx=None, budget=None):
        from repro.flow import AnalysisContext
        from repro.network import NetworkError

        from .iterative import ApproxResult, _resynthesize
        from .metrics import evaluate_error
        from .types import assign_types

        spec = config.error
        if spec is None:
            from .config import ConfigError
            raise ConfigError("engine 'resub' requires an error spec",
                              field_name="error")
        ctx = ctx if ctx is not None else AnalysisContext()
        if budget is not None:
            budget.start()
        approx = network.copy()
        probs = ctx.probabilities(network, n_words=config.prob_words,
                                  seed=config.seed)
        types = assign_types(network, directions, config, probs)
        candidates = _propose(approx, config.sim_check_words,
                              config.seed)
        commits: list[tuple[str, list[str], Cover]] = []
        for cand in candidates:
            if budget is not None:
                budget.check_deadline("resub-candidates")
            if cand.target not in approx.nodes:
                continue
            node = approx.nodes[cand.target]
            saved = (list(node.fanins), node.cover.copy())
            try:
                approx.replace_node(cand.target, cand.fanins, cand.cover)
            except NetworkError:
                continue  # cycle-creating rewire; propose() missed it
            value = _screen_value(network, approx, spec,
                                  config.sim_check_words, config.seed)
            if value <= spec.bound:
                commits.append((cand.target, *saved))
            else:
                approx.replace_node(cand.target, *saved)
        cap = config.bdd_node_budget if budget is None \
            else budget.bdd_cap(config.bdd_node_budget)
        evaluation = evaluate_error(network, approx, spec,
                                    bdd_node_budget=cap,
                                    seed=config.seed, ctx=ctx,
                                    budget=budget)
        undone = 0
        # The guarantee: the conservative (exact or upper-bounded)
        # value must satisfy the bound; undoing every commit reaches
        # zero error, so this loop always terminates within budget.
        while not evaluation.within and commits:
            target, fanins, cover = commits.pop()
            approx.replace_node(target, fanins, cover)
            undone += 1
            evaluation = evaluate_error(network, approx, spec,
                                        bdd_node_budget=cap,
                                        seed=config.seed, ctx=ctx,
                                        budget=budget)
        # Resynthesis is function-preserving, so the measured error is
        # unchanged under the exact tiers; the Monte-Carlo tier's
        # structural zero-rate filter is texture-sensitive though, so
        # the cleaned network is attested by its own evaluation and
        # only adopted when that attestation still meets the bound.
        cleaned = approx.copy()
        _resynthesize(cleaned, budget)
        final_eval = evaluate_error(network, cleaned, spec,
                                    bdd_node_budget=cap,
                                    seed=config.seed, ctx=ctx,
                                    budget=budget)
        if final_eval.within:
            approx = cleaned
            evaluation = final_eval
        report = evaluation.to_dict()
        report["commits"] = len(commits)
        report["undone"] = undone
        report["candidates"] = len(candidates)
        result = ApproxResult(
            approx=approx,
            types=types,
            output_approximations=dict(directions),
            # Per-PO claim: the PO's own difference rate is within the
            # whole-circuit budget (trivially true when the aggregate
            # bound holds for er; informative for med/wce).
            correctness={po: bool(evaluation.within)
                         for po in network.outputs},
            check_method=f"error-{evaluation.method}",
            engine=self.name,
            error_report=report)
        if config.lint_level != "off":
            from repro.lint import LintError, lint_approx_result
            result.lint = lint_approx_result(network, result)
            if config.lint_level == "strict" and not result.lint.ok:
                raise LintError(result.lint)
        return result
