"""Synthesis-engine abstraction: protocol + registry.

The flow used to hard-wire one synthesis algorithm (the paper's
iterative cube selection).  This module turns that algorithm into the
first of several *engines* behind a small contract:

* an engine proposes candidate rewrites of the network,
* scores them (implication proofs for the paper's flow, error-metric
  evaluation for error-constrained engines),
* and commits or rolls back each candidate over the mutation-versioned
  :class:`~repro.flow.AnalysisContext` caches.

Engines register by name; :class:`~repro.approx.ApproxConfig` selects
one via its ``engine`` field and the flow's synthesize pass dispatches
through :func:`get_engine`.  The built-in engines:

* ``cube`` — the paper's iterative cube-selection flow
  (:class:`CubeSelectionEngine`), bit-identical to the pre-registry
  behaviour including the quality-floor retry ladder;
* ``resub`` — error-constrained resubstitution
  (:class:`~repro.approx.resub.ResubEngine`), bounded by an
  :class:`~repro.approx.config.ErrorSpec`.
"""

from __future__ import annotations

import dataclasses

from repro.network import Network


class ApproxEngine:
    """Base class / protocol for registered synthesis engines.

    Subclasses set :attr:`name` and implement :meth:`synthesize`.
    :meth:`synthesize_with_floor` is the flow-facing entry point — the
    default implementation runs one synthesis and measures per-output
    quality; engines with their own retry policy (``cube``) override
    it.
    """

    #: Registry key; also recorded in ApproxResult.engine and traces.
    name: str = ""

    def synthesize(self, network: Network, directions: dict[str, int],
                   config, ctx=None, budget=None):
        """One synthesis run; returns an ApproxResult."""
        raise NotImplementedError

    def synthesize_with_floor(self, network: Network,
                              directions: dict[str, int], config,
                              min_approx_pct: float, ctx=None,
                              record=None, budget=None):
        """Flow entry point: synthesize and report per-output quality.

        Returns ``(ApproxResult, per_output_pct)``.  The base
        implementation ignores the floor (error-constrained engines
        answer to their error bound, not the approximation-percentage
        ladder) but still measures the percentages for the tables.
        """
        from .metrics import approximation_percentages
        result = self.synthesize(network, directions, config, ctx=ctx,
                                 budget=budget)
        metric_cap = config.bdd_node_budget if budget is None \
            else budget.bdd_cap(config.bdd_node_budget)
        pct = approximation_percentages(
            network, result.approx, directions,
            bdd_node_budget=metric_cap, ctx=ctx)
        if record is not None:
            record.stats.update({
                "engine": self.name,
                "repair_rounds": result.repair_rounds,
                "check_method": result.check_method,
            })
            if result.error_report is not None:
                rep = result.error_report
                record.stats.update({
                    "error_metric": rep.get("metric"),
                    "error_bound": rep.get("bound"),
                    "error_value": rep.get("value"),
                    "error_budget_spent": rep.get("budget_spent"),
                })
        return result, pct


class CubeSelectionEngine(ApproxEngine):
    """The paper's iterative cube-selection flow (the default).

    Wraps :func:`~repro.approx.iterative.synthesize_approximation`
    plus the quality-floor retry ladder that used to live in
    ``repro.ced.flow`` — moved here verbatim so results stay
    bit-identical to the pre-registry flow on every benchmark.
    """

    name = "cube"

    def synthesize(self, network, directions, config, ctx=None,
                   budget=None):
        from .iterative import synthesize_approximation
        return synthesize_approximation(network, directions, config,
                                        ctx=ctx, budget=budget)

    def synthesize_with_floor(self, network, directions, config,
                              min_approx_pct, ctx=None, record=None,
                              budget=None):
        """Synthesize, retrying with gentler configs below the floor.

        The ladder widens the disparity/tiebreak ratios and lowers the
        DC and cube-drop thresholds — each step keeps more of the
        circuit — and ends at conservative-EX typing, which approaches
        the exact circuit.  The best attempt (highest minimum
        per-output percentage) wins if the floor is never reached.
        """
        from .metrics import approximation_percentages
        ladder = [config]
        if min_approx_pct > 0:
            ladder.append(dataclasses.replace(
                config,
                disparity_ratio=max(config.disparity_ratio, 8.0),
                phase_tiebreak=max(config.phase_tiebreak, 8.0),
                dc_threshold=min(config.dc_threshold, 0.1),
                cube_drop_threshold=min(config.cube_drop_threshold,
                                        0.01)))
            ladder.append(dataclasses.replace(
                ladder[-1], conservative_ex=True, collapse_dc=False))
        best = None
        best_floor = -1.0
        attempts = 0
        for attempt in ladder:
            attempts += 1
            result = self.synthesize(network, directions, attempt,
                                     ctx=ctx, budget=budget)
            metric_cap = attempt.bdd_node_budget if budget is None \
                else budget.bdd_cap(attempt.bdd_node_budget)
            pct = approximation_percentages(
                network, result.approx, directions,
                bdd_node_budget=metric_cap, ctx=ctx)
            floor = min(pct.values(), default=100.0)
            if floor > best_floor:
                best, best_floor = (result, pct), floor
            if floor >= min_approx_pct:
                break
        assert best is not None
        if record is not None:
            record.stats.update({
                "engine": self.name,
                "ladder_attempts": attempts,
                "repair_rounds": best[0].repair_rounds,
                "check_method": best[0].check_method,
                "dropped_cubes": best[0].dropped_cubes,
                "restored_cones": len(best[0].restored_cones),
            })
        return best


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ApproxEngine] = {}


def register_engine(engine: ApproxEngine) -> ApproxEngine:
    """Register an engine instance under its ``name``."""
    if not engine.name:
        raise ValueError("engine must define a non-empty name")
    _REGISTRY[engine.name] = engine
    return engine


def _ensure_builtin() -> None:
    # resub is imported lazily to break the config -> engine -> resub
    # -> metrics/config import cycle.
    if "cube" not in _REGISTRY:
        register_engine(CubeSelectionEngine())
    if "resub" not in _REGISTRY:
        from .resub import ResubEngine
        register_engine(ResubEngine())


def get_engine(name: str) -> ApproxEngine:
    """Look up a registered engine by name."""
    _ensure_builtin()
    if name not in _REGISTRY:
        raise KeyError(f"unknown engine {name!r} "
                       f"(registered: {', '.join(engine_names())})")
    return _REGISTRY[name]


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))
