"""The iterative cube-selection algorithm (paper Sec 2.2).

Pipeline:

1. assign types (Sec 2.1.1 preprocessing);
2. *approximation of SOPs*: every node's phase SOP is reduced by freely
   discarding insignificant cubes;
3. *ensuring correctness*: primary outputs are checked for the
   implication condition (BDDs, with a simulation fallback); incorrect
   outputs trigger a backward traversal to *sources* of incorrect
   approximation — incorrectly approximated nodes whose fanins are all
   correct — which are repaired with ODC-based cube selection first and
   exact cube selection second.

Exact selection at a source provably restores correctness (the paper's
theorem), so the loop terminates; a round bound with a restore-exact
fallback guards the simulation-checked path.

Under a :class:`repro.guard.Budget`, the whole check runs as a
*degradation ladder* (DESIGN.md §12): global BDDs first, incremental
SAT when the BDDs overflow their capped budget, and — when SAT's
conflict budget or the deadline runs out too — a last-resort rebuild
using only exact per-node conformance selection, which is correct by
construction (the paper's implication theorem) and needs no checking
engine at all.  Each rung is recorded in the budget's
:class:`~repro.guard.BudgetReport`; with no budget, every code path is
bit-identical to the ungoverned flow.

Above the whole ladder sits the *static-discharge rung* (DESIGN.md
§15): :class:`repro.analyze.StaticDischarger` decides implication
queries by constant/containment/relational dataflow analysis — no BDD
node, no SAT clause.  Static verdicts are theorems of the analyses, so
the rung is behavior-neutral (``ApproxConfig.static_discharge`` turns
it off, bit-identically) — even over the *statistical* checker: a
discharged implication has no violating vector, so the simulator would
also answer True, and a static refutation is a constant conflict
violated on every vector, so the simulator would also answer False.
Chaos-rigged budgets bypass the rung so fault drills still exercise
the proving engines.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.analyze import REL_EQ, StaticDischarger
from repro.bdd import BddOverflowError
from repro.cubes import Cover, minimize
from repro.guard import Budget, DeadlineExceeded
from repro.lab.proofs import (EXACT_ENGINES, STATIC_ENGINE,
                              TRUSTED_ENGINES, ConeFingerprinter,
                              cone_payload, implication_key,
                              proof_workers, prove_implications)
from repro.network import (Network, eliminate, propagate_constants,
                           strash, sweep, trim_unread_fanins)
from repro.sat.solver import SatBudgetExhausted, require_decided
from repro.sim import get_simulator

from repro.flow import AnalysisContext

from .config import ApproxConfig
from .cube_selection import (exact_select, implement_phase, odc_select,
                             phase_cover)
from .types import NodeType, assign_types


@dataclass
class ApproxResult:
    """Output of approximate synthesis."""

    approx: Network
    types: dict[str, NodeType]
    output_approximations: dict[str, int]
    #: Per-output correctness: True means the implication was verified
    #: (exactly under BDD checking, statistically under simulation).
    correctness: dict[str, bool]
    check_method: str
    repair_rounds: int = 0
    repaired_nodes: dict[str, str] = field(default_factory=dict)
    dropped_cubes: int = 0
    restored_cones: list[str] = field(default_factory=list)
    #: Static-verification report, when ApproxConfig.lint_level != "off".
    lint: object | None = None
    #: Registered engine that produced this result.
    engine: str = "cube"
    #: Error-constrained engines attach the final
    #: :meth:`~repro.approx.metrics.ErrorEvaluation.to_dict` here;
    #: implication-exact engines leave it None.
    error_report: dict | None = None

    @property
    def all_correct(self) -> bool:
        return all(self.correctness.values())


def synthesize_approximation(network: Network,
                             output_approximations: dict[str, int],
                             config: ApproxConfig | None = None,
                             ctx: AnalysisContext | None = None,
                             budget: Budget | None = None
                             ) -> ApproxResult:
    """Synthesize an approximate logic circuit for ``network``.

    ``output_approximations`` maps every primary output to 0 or 1: the
    approximation direction (0-approximation detects 0->1 errors at that
    output, 1-approximation detects 1->0 errors).  The returned network
    shares the primary-input names and output names of the original.

    ``ctx`` shares analysis state (global BDDs, probabilities) across
    calls and flow stages; results are bit-identical with or without it
    (BDD canonicity — see :mod:`repro.flow.analysis`).

    ``budget`` enables resource governance: the correctness check runs
    as a degradation ladder (BDD -> SAT -> conformance-only rebuild)
    instead of letting an engine exhaust raise, with every rung
    recorded in ``budget.report``.  With ``budget=None`` (the default)
    behavior is bit-identical to the ungoverned algorithm.
    """
    config = config or ApproxConfig()
    ctx = ctx if ctx is not None else AnalysisContext()
    if budget is not None:
        budget.start()
        ctx.guard = budget
    probs = ctx.probabilities(network, n_words=config.prob_words,
                              seed=config.seed)
    types = assign_types(network, output_approximations, config, probs)

    approx = network.copy("approx")
    dropped = _reduce_all_sops(approx, types, probs, config)

    repaired: dict[str, str] = {}
    repair_stage: dict[str, int] = {}
    restored: list[str] = []
    rounds = 0
    try:
        if budget is not None:
            budget.check_deadline("synthesize entry")
        # Cross-process proof cache: per-PO implication verdicts keyed
        # by cone fingerprint.  Only trusted (BDD/SAT/static) verdicts
        # are served or stored, and chaos-rigged budgets bypass it
        # entirely, so every flow stays bit-identical with a cold or
        # warm cache.
        proofs = getattr(ctx, "proofs", None)
        if config.check == "sim" or (budget is not None
                                     and budget.report.chaos):
            proofs = None
        # Static-discharge rung (repro.analyze): decides implications by
        # dataflow analysis alone.  Sound over every engine, including
        # the statistical checker (see the module docstring), but
        # disabled for chaos drills, which must exercise the proving
        # engines themselves.
        use_static = (config.static_discharge
                      and not (budget is not None
                               and budget.report.chaos))
        fingerprints = ConeFingerprinter() if proofs is not None else None

        def _rewrap(c):
            if isinstance(c, _StaticChecker):
                return c
            c = _wrap_proofs(c, proofs, fingerprints)
            if use_static and getattr(c, "method", None) \
                    in _STATIC_WRAPPABLE:
                return _StaticChecker(c, types, ctx, proofs, fingerprints)
            return c

        served = None
        if proofs is not None:
            _preprove_parallel(network, approx, output_approximations,
                               proofs, fingerprints, config, budget,
                               static=StaticDischarger(
                                   network, approx,
                                   ctx.analyses(network),
                                   ctx.analyses(approx))
                               if use_static else None)
            served = _serve_cached_proofs(network, approx,
                                          output_approximations,
                                          proofs, fingerprints, budget)
        if served is not None:
            correctness, check_method = served
        else:
            checker = _rewrap(
                _make_checker(network, approx, output_approximations,
                              types, config, ctx, budget))
            max_rounds = config.max_repair_rounds if budget is None \
                else budget.repair_cap(config.max_repair_rounds)
            while rounds < max_rounds:
                if budget is not None:
                    budget.check_deadline("repair round")
                incorrect = [po for po in network.outputs
                             if not checker.po_correct(po)]
                if not incorrect:
                    break
                rounds += 1
                sources = _find_sources(network, checker, incorrect)
                if not sources:
                    # POs disagree but no internal source is isolatable
                    # (can happen under statistical checking): restore
                    # the cones.
                    for po in incorrect:
                        _restore_cone(network, approx, po)
                        restored.append(po)
                    checker = _rewrap(
                        _safe_refresh(checker, network, approx,
                                      output_approximations, types,
                                      config, budget))
                    continue
                for name in sources:
                    stage = repair_stage.get(name, 0)
                    action = _repair_node(network, approx, types, name,
                                          stage, config)
                    repaired[name] = action
                    repair_stage[name] = stage + 1
                checker = _rewrap(
                    _safe_refresh(checker, network, approx,
                                  output_approximations, types,
                                  config, budget))
            else:
                # Round budget exhausted: make remaining outputs exact.
                for po in network.outputs:
                    if not checker.po_correct(po):
                        _restore_cone(network, approx, po)
                        restored.append(po)
                checker = _rewrap(
                    _safe_refresh(checker, network, approx,
                                  output_approximations, types,
                                  config, budget))

            correctness = {po: checker.po_correct(po)
                           for po in network.outputs}
            check_method = checker.method
            if budget is not None and isinstance(checker, _StaticChecker):
                checker.record_rung(budget)
    except (BddOverflowError, SatBudgetExhausted,
            DeadlineExceeded) as exc:
        if budget is None:
            raise
        # Last rung of the degradation ladder: rebuild from the
        # original applying only exact per-node conformance selection —
        # correct by construction (the paper's implication theorem), so
        # no checking engine is needed.  Partial repairs are discarded.
        _record_engine_failure(budget, exc)
        approx, dropped = _conformance_fallback(network, types, probs,
                                                config, budget)
        correctness = {po: True for po in network.outputs}
        check_method = "conformance"
    _resynthesize(approx, budget)
    result = ApproxResult(
        approx=approx,
        types=types,
        output_approximations=dict(output_approximations),
        correctness=correctness,
        check_method=check_method,
        repair_rounds=rounds,
        repaired_nodes=repaired,
        dropped_cubes=dropped,
        restored_cones=restored)
    if config.lint_level != "off":
        # Imported lazily: repro.lint imports repro.approx at top level.
        from repro.lint import LintError, lint_approx_result
        result.lint = lint_approx_result(network, result)
        if config.lint_level == "strict" and not result.lint.ok:
            raise LintError(result.lint)
    return result


def _resynthesize(approx: Network, budget: Budget | None = None) -> None:
    """Function-preserving cleanup of the approximate network.

    Cube selection leaves constants, unread fanins, single-fanout
    chains, and redundant SOPs behind; re-optimizing them is where much
    of the paper's area saving comes from (their flow hands the
    approximate network back to the synthesis tool).

    An expired ``budget`` deadline truncates the per-node minimization
    and skips the eliminate sweep: both are optimizations, so the
    result stays functionally identical, just less compact.
    """
    governed = budget is not None
    if governed and budget.expired:
        budget.report.skip("resynthesize", "deadline expired")
    propagate_constants(approx)
    trim_unread_fanins(approx)
    sweep(approx)
    for name in approx.topological_order():
        node = approx.nodes[name]
        if node.fanins:
            approx.replace_cover(
                name, minimize(node.cover, budget=budget))
    trim_unread_fanins(approx)
    if not (governed and budget.expired):
        eliminate(approx, max_support=8, max_cubes=12)
    propagate_constants(approx)
    strash(approx)
    sweep(approx)


def _conformance_fallback(network: Network, types: dict[str, NodeType],
                          probs: dict[str, float], config: ApproxConfig,
                          budget: Budget) -> tuple[Network, int]:
    """The ladder's last rung: conformance-only re-synthesis.

    Rebuilds the approximation from the original, reducing ZERO/ONE
    nodes with exact conformance selection only and keeping EX/DC nodes
    exact.  By the paper's implication theorem every node (hence every
    PO) is then a correct approximation of its type by construction —
    no BDD, SAT, or simulation check is required, so this rung cannot
    itself exhaust an engine.
    """
    fallback = dataclasses.replace(config, stage1="conformance",
                                   collapse_dc=False,
                                   reduce_ex_nodes=False)
    approx = network.copy("approx")
    dropped = _reduce_all_sops(approx, types, probs, fallback)
    budget.report.rung("conformance", "selected")
    return approx, dropped


def _record_engine_failure(budget: Budget, exc: Exception) -> None:
    """Record why the checking engine gave up, without duplicating the
    ladder events already written at the failure site."""
    report = budget.report
    if isinstance(exc, BddOverflowError):
        resource, event = "bdd_nodes", ("bdd", "overflow")
    elif isinstance(exc, SatBudgetExhausted):
        resource, event = "sat_conflicts", ("sat", "exhausted")
    else:
        resource, event = "deadline", None
        if report.engine is not None:
            event = (report.engine, "deadline")
    report.exhaust(resource, message=str(exc))
    if event is not None:
        last = report.ladder[-1] if report.ladder else None
        if last is None or (last["engine"], last["outcome"]) != event:
            report.rung(*event)


# ----------------------------------------------------------------------
# Stage 1: free SOP reduction
# ----------------------------------------------------------------------
def _reduce_all_sops(approx: Network, types: dict[str, NodeType],
                     probs: dict[str, float],
                     config: ApproxConfig) -> int:
    """Stage-1 reduction of every node's phase SOP.

    Type-0/1 nodes go through cube selection (conformance and/or
    significance dropping, per ``config.stage1``); DC nodes collapse to
    their most likely constant; EX nodes optionally get significance
    dropping only (any damage is repaired later).
    """
    dropped = 0
    for name in approx.topological_order():
        node = approx.nodes[name]
        node_type = types[name]
        if not node.fanins:
            continue
        if node_type is NodeType.DC and config.collapse_dc:
            value = probs[name] >= 0.5
            dropped += len(node.cover)
            approx.replace_node(
                name, [], Cover.one(0) if value else Cover.zero(0))
            continue
        if node_type is NodeType.EX and not config.reduce_ex_nodes:
            continue
        fanin_probs = [probs[f] for f in node.fanins]
        phase = phase_cover(node.cover, node_type)
        before = len(phase)
        if node_type in (NodeType.ZERO, NodeType.ONE) and \
                config.stage1 in ("conformance", "both"):
            fanin_types = [NodeType.EX if approx.is_input(f)
                           else types[f] for f in node.fanins]
            phase = exact_select(phase, fanin_types)
        if config.stage1 in ("significance", "both") and len(phase) > 1:
            phase, _ = _drop_insignificant(phase, fanin_probs, config)
        dropped += before - len(phase)
        approx.replace_cover(name, implement_phase(phase, node_type))
    trim_unread_fanins(approx)
    return dropped


def _drop_insignificant(phase: Cover, fanin_probs: list[float],
                        config: ApproxConfig) -> tuple[Cover, int]:
    if config.cube_drop_threshold <= 0.0 or len(phase) <= 1:
        return phase, 0
    total = max(phase.probability(fanin_probs), 1e-12)
    kept = []
    for cube in phase.cubes:
        mass = Cover(phase.n, [cube]).probability(fanin_probs)
        if mass / total >= config.cube_drop_threshold:
            kept.append(cube)
    if not kept:
        # Keep the single most significant cube rather than collapsing
        # the node to a constant outright; repair may still shrink it.
        best = max(phase.cubes, key=lambda c: Cover(
            phase.n, [c]).probability(fanin_probs))
        kept = [best]
    return Cover(phase.n, kept), len(phase) - len(kept)


# ----------------------------------------------------------------------
# Stage 2: correctness
# ----------------------------------------------------------------------
def _find_sources(network: Network, checker: "_Checker",
                  incorrect_pos: list[str]) -> list[str]:
    """Sources of incorrect approximation in the cones of bad outputs."""
    cone = network.transitive_fanin(
        [po for po in incorrect_pos if not network.is_input(po)])
    sources = []
    for name in network.topological_order():
        if name not in cone:
            continue
        if checker.node_correct(name):
            continue
        node = network.nodes[name]
        if all(network.is_input(f) or checker.node_correct(f)
               for f in node.fanins):
            sources.append(name)
    return sources


def _repair_node(network: Network, approx: Network,
                 types: dict[str, NodeType], name: str, stage: int,
                 config: ApproxConfig) -> str:
    """Repair one source node.  Returns the action taken.

    The repair ladder: ODC-based cube selection, then exact cube
    selection (provably correct when the fanins are correct), then —
    should a node still be incorrect, which can happen for EX nodes
    whose fanins are only directionally correct — restoring its entire
    transitive fanin cone to exact logic.  The final rung guarantees
    progress unconditionally.
    """
    node_type = types[name]
    original = network.nodes[name]
    if node_type in (NodeType.EX, NodeType.DC):
        if stage == 0:
            approx.replace_node(name, list(original.fanins),
                                original.cover.copy())
            return "restore"
        _restore_cone(network, approx, name)
        return "restore-cone"
    fanin_types = [NodeType.EX if network.is_input(f) else types[f]
                   for f in original.fanins]
    phase = phase_cover(original.cover, node_type)
    if stage == 0 and config.odc_in_repair:
        selected = odc_select(phase, fanin_types)
        approx.replace_node(name, list(original.fanins),
                            implement_phase(selected, node_type))
        return "odc"
    if stage <= 1:
        selected = exact_select(phase, fanin_types)
        approx.replace_node(name, list(original.fanins),
                            implement_phase(selected, node_type))
        return "exact"
    _restore_cone(network, approx, name)
    return "restore-cone"


def _restore_cone(network: Network, approx: Network, po: str) -> None:
    """Make the whole cone of ``po`` exact (the always-correct fallback)."""
    if network.is_input(po):
        return
    cone = network.transitive_fanin([po])
    node_type = type(next(iter(network.nodes.values())))
    touched = []
    for name in network.topological_order():
        if name in cone:
            node = network.nodes[name]
            # Restoring original nodes cannot create cycles (the
            # original network is acyclic), so the per-node
            # replace_node acyclicity re-check is skipped.
            approx.nodes[name] = node_type(name, list(node.fanins),
                                           node.cover.copy())
            touched.append(name)
    if touched:
        approx._invalidate(touched=touched)


# ----------------------------------------------------------------------
# Correctness checkers
# ----------------------------------------------------------------------
class _Checker:
    method = "abstract"

    def __init__(self, network: Network, approx: Network,
                 output_approximations: dict[str, int],
                 types: dict[str, NodeType]):
        self.network = network
        self.approx = approx
        self.directions = output_approximations
        self.types = types

    def refresh(self) -> None:
        raise NotImplementedError

    def po_correct(self, po: str) -> bool:
        if self.network.is_input(po):
            return True
        direction = self.directions[po]
        return self._implication_holds(po, 1 if direction == 1 else 0)

    def node_correct(self, name: str) -> bool:
        node_type = self.types[name]
        if node_type is NodeType.DC:
            return True
        if node_type is NodeType.EX:
            return self._equal(name)
        return self._implication_holds(
            name, 1 if node_type is NodeType.ONE else 0)

    def _implication_holds(self, name: str, direction: int) -> bool:
        raise NotImplementedError

    def _equal(self, name: str) -> bool:
        raise NotImplementedError


class _BddChecker(_Checker):
    """Exact implication checks on global BDDs of both networks.

    The pair BDDs come from the shared :class:`AnalysisContext`: the
    original's functions are built once per flow and each repair-round
    refresh recomputes only the cones the repairs touched.  Canonicity
    makes every implication verdict identical to a fresh rebuild.
    """

    method = "bdd"

    def __init__(self, network, approx, output_approximations, types,
                 budget: int | None,
                 ctx: AnalysisContext | None = None):
        super().__init__(network, approx, output_approximations, types)
        self.budget = budget
        self.ctx = ctx if ctx is not None else AnalysisContext()
        self.refresh()

    def refresh(self) -> None:
        self.bdds = self.ctx.pair_bdds(self.network, self.approx,
                                       self.budget)
        self._cache: dict[str, bool] = {}

    def _implication_holds(self, name: str, direction: int) -> bool:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        f = self.bdds.function("o_" + name)
        g = self.bdds.function("a_" + name)
        if direction == 1:
            ok = self.bdds.manager.implies(g, f)  # 1-approx: G => F
        else:
            ok = self.bdds.manager.implies(f, g)  # 0-approx: F => G
        self._cache[name] = ok
        return ok

    def _equal(self, name: str) -> bool:
        return self.bdds.function("o_" + name) == \
            self.bdds.function("a_" + name)


class _SatChecker(_Checker):
    """Exact implication checks by SAT (the paper's named alternative).

    Each refresh re-encodes both networks into a fresh CDCL solver;
    per-node queries are incremental solves under assumptions on the
    miter variables.
    """

    method = "sat"

    def __init__(self, network, approx, output_approximations, types,
                 max_conflicts: int | None = None,
                 deadline: float | None = None):
        super().__init__(network, approx, output_approximations, types)
        self.max_conflicts = max_conflicts
        self.deadline = deadline
        self.refresh()

    def refresh(self) -> None:
        from repro.sat import NetworkEncoder
        self.encoder = NetworkEncoder(self.network.inputs)
        self.encoder.add_network(self.network, prefix="o_")
        self.encoder.add_network(self.approx, prefix="a_")
        self._cache: dict[str, bool] = {}

    def _implication_holds(self, name: str, direction: int) -> bool:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if direction == 1:   # 1-approx: G => F
            verdict = self.encoder.implication_holds(
                "a_" + name, "o_" + name, self.max_conflicts,
                self.deadline)
        else:                # 0-approx: F => G
            verdict = self.encoder.implication_holds(
                "o_" + name, "a_" + name, self.max_conflicts,
                self.deadline)
        # Unknown (budget ran out) must not be cached or collapsed into
        # "implication fails" — raise so the ladder degrades instead.
        ok = require_decided(verdict, f"implication check for {name!r}")
        self._cache[name] = ok
        return ok

    def _equal(self, name: str) -> bool:
        return require_decided(
            self.encoder.equivalent("o_" + name, "a_" + name,
                                    self.max_conflicts, self.deadline),
            f"equivalence check for {name!r}")


class _SimChecker(_Checker):
    """Statistical implication checks with bit-parallel simulation."""

    method = "sim"

    def __init__(self, network, approx, output_approximations, types,
                 n_words: int, seed: int):
        super().__init__(network, approx, output_approximations, types)
        self.n_words = n_words
        self.seed = seed
        self._orig_sim = get_simulator(network)
        rng = np.random.default_rng(seed)
        self._pi_words = self._orig_sim.random_inputs(rng, n_words)
        self._orig_values = self._orig_sim.run(self._pi_words)
        self.refresh()

    def refresh(self) -> None:
        approx_sim = get_simulator(self.approx)
        # Input rows must align with the original's input ordering.
        reorder = [self.network.inputs.index(pi)
                   for pi in approx_sim.input_names]
        self._approx_sim = approx_sim
        self._approx_values = approx_sim.run(self._pi_words[reorder])
        self._cache = {}

    def _rows(self, name: str):
        o = self._orig_values[self._orig_sim.index[name]]
        a = self._approx_values[self._approx_sim.index[name]]
        return o, a

    def _implication_holds(self, name: str, direction: int) -> bool:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        o, a = self._rows(name)
        if direction == 1:
            ok = not bool((a & ~o).any())   # G => F on every vector
        else:
            ok = not bool((o & ~a).any())   # F => G
        self._cache[name] = ok
        return ok

    def _equal(self, name: str) -> bool:
        o, a = self._rows(name)
        return bool(np.array_equal(o, a))


class _ProofCachedChecker:
    """Serves per-PO implication verdicts from the cross-process proof
    cache, storing every verdict the wrapped *exact* checker proves.

    Verdicts are content-addressed by the fingerprint of the original
    and approximate cones plus the check direction, so a hit is exactly
    as trustworthy as re-proving — the cone pair is byte-identical to
    the one the cached proof ran on.  Statistical (sim) verdicts are
    never served or stored; node-level queries pass straight through
    (repair rounds mutate the approx, so their cones rarely repeat).
    """

    def __init__(self, inner: _Checker, proofs, fingerprints):
        self._inner = inner
        self._proofs = proofs
        self._fp = fingerprints

    @property
    def method(self) -> str:
        return self._inner.method

    @property
    def network(self) -> Network:
        return self._inner.network

    @property
    def approx(self) -> Network:
        return self._inner.approx

    @property
    def directions(self) -> dict[str, int]:
        return self._inner.directions

    def refresh(self) -> None:
        self._inner.refresh()

    def node_correct(self, name: str) -> bool:
        return self._inner.node_correct(name)

    def po_correct(self, po: str) -> bool:
        inner = self._inner
        if inner.network.is_input(po):
            return True
        if inner.method not in EXACT_ENGINES:
            return inner.po_correct(po)
        direction = 1 if inner.directions[po] == 1 else 0
        key = implication_key(self._fp, inner.network, inner.approx,
                              po, direction)
        entry = self._proofs.get(key)
        if entry is not None and entry.get("engine") in TRUSTED_ENGINES:
            return bool(entry["holds"])
        ok = inner.po_correct(po)
        self._proofs.put(key, {
            "kind": "implication", "po": po, "direction": direction,
            "holds": bool(ok), "engine": inner.method})
        return ok


def _wrap_proofs(checker, proofs, fingerprints):
    if proofs is None or isinstance(checker, _ProofCachedChecker):
        return checker
    return _ProofCachedChecker(checker, proofs, fingerprints)


#: Checker methods the static rung may wrap.  The exact engines are
#: trivially safe (two sound provers agree).  The statistical checker
#: is safe too, per-query: its vectors are fixed at construction (not
#: a stream a skipped query would shift), a discharged implication has
#: no violating vector for the simulator to find, and a static
#: refutation is a constant conflict every vector violates.
_STATIC_WRAPPABLE = tuple(EXACT_ENGINES) + ("sim",)


class _StaticChecker:
    """The static-discharge rung, wrapped around the whole ladder.

    Implication queries the :class:`repro.analyze.StaticDischarger` can
    decide never reach the proof cache or a proving engine; everything
    else delegates unchanged.  Static verdicts are theorems of the
    dataflow analyses, so wrapping is behavior-neutral — the rung only
    changes *how fast* an answer arrives, never the answer (see
    ``_STATIC_WRAPPABLE`` for why that holds even over the statistical
    checker).  Discharged PO verdicts are stored in the cross-process
    proof cache under the ``"static"`` engine so warm runs and lint
    re-verification share them; per-node repair queries are counted
    but not cached (their cones rarely repeat).
    """

    def __init__(self, inner, types: dict[str, NodeType],
                 ctx: AnalysisContext, proofs, fingerprints):
        self._inner = inner
        self._types = types
        self._ctx = ctx
        self._proofs = proofs
        self._fp = fingerprints
        self._disch = StaticDischarger(
            inner.network, inner.approx,
            original_analyses=ctx.analyses(inner.network),
            approx_analyses=ctx.analyses(inner.approx))
        self.po_attempts = self.po_discharged = 0
        self.node_attempts = self.node_discharged = 0

    @property
    def method(self) -> str:
        return self._inner.method

    @property
    def network(self) -> Network:
        return self._inner.network

    @property
    def approx(self) -> Network:
        return self._inner.approx

    @property
    def directions(self) -> dict[str, int]:
        return self._inner.directions

    def refresh(self) -> None:
        # The discharger's analyses re-solve lazily (they watch the
        # network versions themselves), so only the engine refreshes.
        self._inner.refresh()

    def po_correct(self, po: str) -> bool:
        inner = self._inner
        if inner.network.is_input(po):
            return True
        if inner.method not in _STATIC_WRAPPABLE:
            return inner.po_correct(po)
        direction = 1 if inner.directions[po] == 1 else 0
        self.po_attempts += 1
        proof = self._disch.implication(po, direction)
        if proof.holds is None:
            self._ctx._miss("static")
            return inner.po_correct(po)
        self.po_discharged += 1
        self._ctx._hit("static")
        if self._proofs is not None:
            key = implication_key(self._fp, inner.network, inner.approx,
                                  po, direction)
            self._proofs.put(key, {
                "kind": "implication", "po": po, "direction": direction,
                "holds": bool(proof.holds), "engine": STATIC_ENGINE})
        return proof.holds

    def node_correct(self, name: str) -> bool:
        inner = self._inner
        if inner.method not in _STATIC_WRAPPABLE:
            return inner.node_correct(name)
        node_type = self._types[name]
        if node_type is NodeType.DC:
            return inner.node_correct(name)
        self.node_attempts += 1
        if node_type is NodeType.EX:
            # Exact nodes need cone *equality*; static can only confirm
            # it (EQ is a theorem), never refute it.
            if self._disch.relations().get(name) == REL_EQ \
                    or self._static_equal(name):
                self.node_discharged += 1
                self._ctx._hit("static_node")
                return True
            self._ctx._miss("static_node")
            return inner.node_correct(name)
        direction = 1 if node_type is NodeType.ONE else 0
        proof = self._disch.implication(name, direction)
        if proof.holds is None:
            self._ctx._miss("static_node")
            return inner.node_correct(name)
        self.node_discharged += 1
        self._ctx._hit("static_node")
        return proof.holds

    def _static_equal(self, name: str) -> bool:
        return name in self._inner.approx.nodes \
            and self._disch._structurally_equal(name)

    def record_rung(self, budget: Budget) -> None:
        """One informational ladder event summarizing the rung's work."""
        if not (self.po_discharged or self.node_discharged):
            return
        budget.report.rung(
            STATIC_ENGINE, "assisted",
            po_discharged=self.po_discharged,
            po_attempts=self.po_attempts,
            node_discharged=self.node_discharged,
            node_attempts=self.node_attempts)


def _serve_cached_proofs(network: Network, approx: Network,
                         output_approximations: dict[str, int],
                         proofs, fingerprints,
                         budget: Budget | None):
    """The warm-cache fast path: skip the checking engine entirely.

    Only when *every* PO's implication verdict is cached, trusted, and
    True — a single uncached or failing PO falls back to the normal
    checker (wrapped, so the cached verdicts still serve per PO).
    Returns ``(correctness, check_method)`` or None.
    """
    correctness: dict[str, bool] = {}
    engines: set[str] = set()
    for po in network.outputs:
        if network.is_input(po):
            correctness[po] = True
            continue
        direction = 1 if output_approximations[po] == 1 else 0
        key = implication_key(fingerprints, network, approx, po,
                              direction)
        entry = proofs.get(key)
        if entry is None or entry.get("engine") not in TRUSTED_ENGINES \
                or not entry.get("holds"):
            return None
        correctness[po] = True
        engines.add(entry["engine"])
    # Attribute the run to the strongest engine that contributed: an
    # all-static serve is the static rung's own fast path; any BDD
    # involvement claims "bdd"; SAT only when SAT actually proved one.
    if engines <= {STATIC_ENGINE}:
        method = STATIC_ENGINE
    elif engines <= {"bdd", STATIC_ENGINE}:
        method = "bdd"
    else:
        method = "sat"
    if budget is not None:
        budget.report.rung(method, "selected", proof_cache=True)
    return correctness, method


def _preprove_parallel(network: Network, approx: Network,
                       output_approximations: dict[str, int],
                       proofs, fingerprints, config: ApproxConfig,
                       budget: Budget | None, static=None) -> None:
    """Prove uncached PO implications concurrently before the checker
    is built (``REPRO_PROOF_WORKERS`` > 0).

    Each worker proves one independent PO cone pair with budget-capped
    BDDs; undecided cones (overflow/deadline in the worker) are simply
    left uncached and handled by the in-process degradation ladder.
    With a ``static`` discharger, statically decidable implications are
    cached up front and never shipped to a worker at all.
    """
    if static is not None:
        for po in network.outputs:
            if network.is_input(po):
                continue
            direction = 1 if output_approximations[po] == 1 else 0
            key = implication_key(fingerprints, network, approx, po,
                                  direction)
            if proofs.get(key) is not None:
                continue
            verdict = static.implication(po, direction)
            if verdict.holds is not None:
                proofs.put(key, {
                    "kind": "implication", "po": po,
                    "direction": direction,
                    "holds": bool(verdict.holds),
                    "engine": STATIC_ENGINE})
    workers = proof_workers()
    if workers <= 0 or config.check not in ("auto", "bdd"):
        return
    node_cap = config.bdd_node_budget
    if budget is not None:
        node_cap = budget.bdd_cap(node_cap)
    jobs = []
    for po in network.outputs:
        if network.is_input(po):
            continue
        direction = 1 if output_approximations[po] == 1 else 0
        key = implication_key(fingerprints, network, approx, po,
                              direction)
        if proofs.get(key) is not None:
            continue
        jobs.append({
            "key": key,
            "original": cone_payload(network, po),
            "approx": cone_payload(approx, po),
            "po": po,
            "direction": direction,
            "node_cap": node_cap,
            "deadline_s": budget.remaining_s()
            if budget is not None else None,
        })
    if not jobs:
        return
    by_key = {job["key"]: job for job in jobs}
    for verdict in prove_implications(jobs, workers):
        if not verdict.get("ok"):
            continue
        job = by_key[verdict["key"]]
        proofs.put(verdict["key"], {
            "kind": "implication", "po": job["po"],
            "direction": job["direction"],
            "holds": bool(verdict["holds"]),
            "engine": verdict["engine"]})


def _safe_refresh(checker: "_Checker", network: Network, approx: Network,
                  output_approximations: dict[str, int],
                  types: dict[str, NodeType],
                  config: ApproxConfig,
                  budget: Budget | None = None) -> "_Checker":
    """Refresh a checker, downgrading BDD -> simulation on overflow
    (BDD -> SAT under a governing budget)."""
    try:
        checker.refresh()
        return checker
    except BddOverflowError:
        if budget is not None:
            cap = budget.bdd_cap(config.bdd_node_budget)
            budget.report.rung("bdd", "overflow", node_cap=cap,
                               where="refresh")
            budget.report.exhaust("bdd_nodes", cap=cap, where="refresh")
            return _governed_sat_checker(
                network, approx, output_approximations, types, budget)
        if config.check == "bdd":
            raise
        return _SimChecker(network, approx, output_approximations, types,
                           config.sim_check_words, config.seed)


def _governed_sat_checker(network: Network, approx: Network,
                          output_approximations: dict[str, int],
                          types: dict[str, NodeType],
                          budget: Budget) -> _SatChecker:
    """The ladder's SAT rung.  A zero conflict cap (the deterministic
    ``sat-exhausted`` chaos rig) skips straight past it."""
    max_conflicts = budget.sat_cap(None)
    if max_conflicts is not None and max_conflicts <= 0:
        raise SatBudgetExhausted(
            "SAT conflict budget is zero: the SAT rung cannot decide "
            "anything")
    checker = _SatChecker(network, approx, output_approximations,
                          types, max_conflicts=max_conflicts,
                          deadline=budget.deadline())
    budget.report.rung("sat", "selected", max_conflicts=max_conflicts)
    return checker


def _make_checker(network: Network, approx: Network,
                  output_approximations: dict[str, int],
                  types: dict[str, NodeType],
                  config: ApproxConfig,
                  ctx: AnalysisContext | None = None,
                  budget: Budget | None = None) -> _Checker:
    if budget is not None:
        return _governed_checker(network, approx, output_approximations,
                                 types, config, ctx, budget)
    if config.check == "sim":
        return _SimChecker(network, approx, output_approximations, types,
                           config.sim_check_words, config.seed)
    if config.check == "sat":
        return _SatChecker(network, approx, output_approximations,
                           types)
    try:
        return _BddChecker(network, approx, output_approximations, types,
                           config.bdd_node_budget, ctx)
    except BddOverflowError:
        if config.check == "bdd":
            raise
        return _SimChecker(network, approx, output_approximations, types,
                           config.sim_check_words, config.seed)


def _governed_checker(network: Network, approx: Network,
                      output_approximations: dict[str, int],
                      types: dict[str, NodeType],
                      config: ApproxConfig,
                      ctx: AnalysisContext | None,
                      budget: Budget) -> _Checker:
    """Budget-governed checker construction: the degradation ladder.

    BDD first (node cap = min of config and budget), SAT on overflow,
    and the caller's conformance fallback when SAT is exhausted too.
    An explicit ``check="sim"`` keeps the statistical checker; an
    explicit ``check="bdd"``/``"sat"`` still degrades down-ladder —
    under a budget, graceful completion outranks the engine pin.
    """
    if config.check == "sim":
        budget.report.rung("sim", "selected")
        return _SimChecker(network, approx, output_approximations, types,
                           config.sim_check_words, config.seed)
    if "sat-exhausted" in budget.report.chaos:
        # The chaos rig must hit the SAT rung deterministically; a BDD
        # checker that happens to fit its cap would mask the injection.
        budget.report.skip("bdd checker",
                          "chaos sat-exhausted routes past the BDD rung")
        return _governed_sat_checker(network, approx,
                                     output_approximations, types,
                                     budget)
    if config.check in ("auto", "bdd"):
        cap = budget.bdd_cap(config.bdd_node_budget)
        try:
            checker = _BddChecker(network, approx,
                                  output_approximations, types, cap,
                                  ctx)
            budget.report.rung("bdd", "selected", node_cap=cap)
            return checker
        except BddOverflowError:
            budget.report.rung("bdd", "overflow", node_cap=cap)
            budget.report.exhaust("bdd_nodes", cap=cap)
    return _governed_sat_checker(network, approx, output_approximations,
                                 types, budget)
