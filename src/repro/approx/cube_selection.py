"""Cube selection: exact and observability-don't-care based.

Both techniques shrink a node's *phase SOP* — the node's on-set cover
for a type-1 node, or its off-set cover (the complement) for a type-0
node — by keeping only cubes that are safe given the approximation types
of the fanins (paper Sec 2.1.2).

* :func:`exact_select` keeps cubes that *conform* to every fanin type.
  By the paper's implication theorem, if every fanin is correctly
  approximated per its type, the resulting node function is a correct
  approximation — unconditionally.
* :func:`odc_select` computes the feasible subspace of Eq. 1 with local
  observability don't cares and re-extracts an irredundant cover of it.
  It explores a strictly richer space (it may invent cubes not present
  in the SOP) but only guarantees correctness for single bit flips.
"""

from __future__ import annotations

from repro.bdd import BddManager, isop
from repro.cubes import Cover, Cube, minimize

from .types import NodeType


def phase_cover(cover: Cover, node_type: NodeType) -> Cover:
    """The node SOP written in the phase matching its type.

    Type-0 nodes select cubes from the zero-phase (off-set) expression;
    all other types use the one-phase (on-set) SOP.
    """
    if node_type is NodeType.ZERO:
        return minimize(cover.complement())
    return cover


def implement_phase(selected: Cover, node_type: NodeType) -> Cover:
    """Turn a selected phase cover back into the node's local function."""
    if node_type is NodeType.ZERO:
        return minimize(selected.complement())
    return selected


def conforms(cube: Cube, fanin_types: list[NodeType]) -> bool:
    """Paper's conformance test of one cube against the fanin types.

    A literal '1' needs a type-1 (or exact) fanin, '0' a type-0 (or
    exact) fanin; a DC fanin must not be read at all; EX fanins accept
    anything.
    """
    for i, fanin_type in enumerate(fanin_types):
        literal = cube.literal(i)
        if literal == "-":
            continue
        if fanin_type is NodeType.EX:
            continue
        if literal == "1" and fanin_type is not NodeType.ONE:
            return False
        if literal == "0" and fanin_type is not NodeType.ZERO:
            return False
    return True


def exact_select(phase_sop: Cover,
                 fanin_types: list[NodeType]) -> Cover:
    """Keep exactly the cubes that conform to every fanin type.

    An empty result is legitimate: it yields a constant approximation
    (constant 0 for a type-1 node, constant 1 for a type-0 node), which
    is always correct.
    """
    if len(fanin_types) != phase_sop.n:
        raise ValueError("fanin type list does not match cover width")
    kept = [cube for cube in phase_sop.cubes
            if conforms(cube, fanin_types)]
    return Cover(phase_sop.n, kept)


def feasible_subspace(mgr: BddManager, phase_function: int,
                      fanin_types: list[NodeType]) -> int:
    """Eq. 1: the feasible subspace of a node's phase function.

    For each fanin the cube space is restricted to points that either
    carry the conforming literal value or where the fanin is not locally
    observable (``x_i + !Obs_i`` for type 1, ``!x_i + !Obs_i`` for type
    0, ``!Obs_i`` for DC, unconstrained for EX).
    """
    result = phase_function
    for i, fanin_type in enumerate(fanin_types):
        if fanin_type is NodeType.EX:
            continue
        not_obs = mgr.not_(mgr.boolean_difference(phase_function, i))
        if fanin_type is NodeType.ONE:
            term = mgr.or_(mgr.var(i), not_obs)
        elif fanin_type is NodeType.ZERO:
            term = mgr.or_(mgr.nvar(i), not_obs)
        else:  # DC
            term = not_obs
        result = mgr.and_(result, term)
    return result


def odc_select(phase_sop: Cover, fanin_types: list[NodeType]) -> Cover:
    """ODC-based cube selection (Sec 2.1.2, Eq. 1).

    Computes the feasible subspace exactly and re-extracts an
    irredundant SOP of it, so the selection is not limited to cubes of
    the original expression.  The exact-selection result is always
    contained in this space, so the explored space is strictly richer.
    """
    if len(fanin_types) != phase_sop.n:
        raise ValueError("fanin type list does not match cover width")
    mgr = BddManager(phase_sop.n)
    f = mgr.from_cover(phase_sop)
    feasible = feasible_subspace(mgr, f, fanin_types)
    return isop(mgr, feasible, feasible, num_vars=phase_sop.n)


def odc_select_from_sop(phase_sop: Cover,
                        fanin_types: list[NodeType]) -> Cover:
    """Restricted ODC selection: keep original cubes inside Eq. 1's space.

    Ablation variant — like :func:`exact_select` but with the relaxed
    feasibility criterion instead of literal conformance.
    """
    mgr = BddManager(phase_sop.n)
    f = mgr.from_cover(phase_sop)
    feasible = feasible_subspace(mgr, f, fanin_types)
    kept = [cube for cube in phase_sop.cubes
            if mgr.implies(mgr.from_cube(cube), feasible)]
    return Cover(phase_sop.n, kept)
