"""Local observabilities and observability don't cares.

Everything here is *local*: computed on a node's SOP cover over its
fanin variables (paper Sec 2.1.1: "for each node g ... the local
observability of the fanin nodes of g are computed with respect to the
output of g"; and Sec 2.1.2's "local observability don't cares").  The
covers are tiny — a handful of fanins — so exact computation with a
scratch BDD manager per node is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bdd import BddManager, cover_from_bdd
from repro.cubes import Cover


@dataclass(frozen=True)
class LocalObservability:
    """Observability of one fanin at its node's output.

    ``obs0`` is the probability that the fanin is 0 *and* observable
    (a flip of the fanin would change the node output); ``obs1``
    likewise for value 1.
    """

    obs0: float
    obs1: float

    @property
    def total(self) -> float:
        return self.obs0 + self.obs1

    @property
    def ratio(self) -> float:
        """obs0/obs1 clipped to [eps, 1/eps]; >1 means 0-dominant."""
        eps = 1e-9
        return max(self.obs0, eps) / max(self.obs1, eps)


def local_observabilities(cover: Cover,
                          fanin_probs: Sequence[float] | None = None
                          ) -> list[LocalObservability]:
    """Exact local 0/1-observabilities of every fanin of a node.

    ``fanin_probs[i]`` is P(fanin_i = 1); defaults to 0.5 (the paper's
    uniform-input assumption, applied locally).  Fanins are treated as
    independent, which is the standard local approximation.
    """
    n = cover.n
    mgr = BddManager(n)
    f = mgr.from_cover(cover)
    probs = list(fanin_probs) if fanin_probs is not None else [0.5] * n
    result = []
    for i in range(n):
        diff = mgr.boolean_difference(f, i)
        obs0 = mgr.probability(mgr.and_(mgr.nvar(i), diff), probs)
        obs1 = mgr.probability(mgr.and_(mgr.var(i), diff), probs)
        result.append(LocalObservability(obs0, obs1))
    return result


def local_odc_cover(cover: Cover, fanin: int) -> Cover:
    """The local observability don't-care set of one fanin, as a cover.

    The ODC of fanin ``i`` is the set of local input vectors on which
    the node output does not depend on ``i`` — the complement of the
    Boolean difference.
    """
    mgr = BddManager(cover.n)
    f = mgr.from_cover(cover)
    odc = mgr.not_(mgr.boolean_difference(f, fanin))
    return cover_from_bdd(mgr, odc)


def observability_bdds(mgr: BddManager, f: int) -> list[int]:
    """Boolean-difference BDDs of every variable of a local function."""
    return [mgr.boolean_difference(f, i) for i in range(mgr.num_vars)]
