"""Sharded warm workers: persistent processes running CED flows.

Each shard is one long-lived worker (a spawned process by default, a
thread in ``inline`` mode for tests and semaphore-less sandboxes) that
keeps *warm state* across requests:

* an LRU of :class:`~repro.flow.AnalysisContext` objects keyed by the
  submitted circuit's content digest (pair BDDs, probabilities,
  switching activity survive between submissions of the same circuit);
* a process-wide checkpoint :class:`~repro.lab.cache.ArtifactStore` and
  the cross-process proof cache (:mod:`repro.lab.proofs`) on disk, both
  shared by every shard through atomic content-addressed writes.

Requests are routed to shards by circuit content digest, so repeated
submissions of one circuit always land on the worker already warm for
it.  Workers stream progress back over a single event queue: a
``started`` event on dispatch, one ``pass`` event per completed flow
pass (fed by ``run_ced_flow``'s ``on_pass`` hook), and a terminal
``done``/``failed`` event carrying the full
``CedFlowResult.to_dict()`` document or the structured error.

The module is importable by spawned children, so the worker entry
point and the flow-execution body live at module level and touch no
asyncio state.
"""

from __future__ import annotations

import hashlib
import queue as queue_mod
import threading
import time
import traceback
from collections import OrderedDict
from pathlib import Path

__all__ = ["WorkerPool", "WorkerState", "shard_of", "run_flow_request",
           "BACKENDS"]

BACKENDS = ("process", "thread")

#: Number of warm AnalysisContexts one worker keeps (LRU beyond this).
DEFAULT_CTX_LIMIT = 8


def shard_of(blif: str, shards: int) -> int:
    """Stable shard index of a circuit: same content, same worker."""
    digest = hashlib.sha256(blif.encode()).hexdigest()
    return int(digest[:8], 16) % max(shards, 1)


class WorkerState:
    """One worker's warm caches (lives inside the worker)."""

    def __init__(self, shard: int, state_dir: str,
                 ctx_limit: int = DEFAULT_CTX_LIMIT):
        self.shard = shard
        self.state_dir = Path(state_dir)
        self.checkpoint_dir = self.state_dir / "checkpoints"
        self.proof_dir = self.state_dir / "proofs"
        self.ctx_limit = max(int(ctx_limit), 1)
        self._ctxs: OrderedDict[str, object] = OrderedDict()
        self.jobs_run = 0

    def context_for(self, blif: str):
        """The warm AnalysisContext of this circuit content (LRU)."""
        from repro.flow import AnalysisContext
        key = hashlib.sha256(blif.encode()).hexdigest()
        ctx = self._ctxs.get(key)
        if ctx is not None:
            self._ctxs.move_to_end(key)
            return ctx
        ctx = AnalysisContext()
        self._ctxs[key] = ctx
        while len(self._ctxs) > self.ctx_limit:
            self._ctxs.popitem(last=False)
        return ctx


def _pass_event(job_id: str, record) -> dict:
    cache = {kind: dict(counters)
             for kind, counters in record.cache.items()}
    return {"kind": "pass", "job_id": job_id, "pass": record.name,
            "status": record.status,
            "wall_time_s": round(record.wall_time_s, 6),
            "cache": cache}


def run_flow_request(req: dict, state: WorkerState, emit) -> None:
    """Execute one submission inside the worker; never raises.

    ``emit`` receives plain JSON-safe event dicts; the terminal one is
    always ``done`` or ``failed``.
    """
    job_id = req["job_id"]
    params = dict(req.get("params") or {})
    emit({"kind": "started", "job_id": job_id, "shard": state.shard})
    try:
        from repro.approx import ApproxConfig
        from repro.ced import run_ced_flow
        from repro.guard import Budget, BudgetExceeded
        from repro.network import parse_blif

        net = parse_blif(req["blif"], source=f"job:{job_id}")
        words = int(params.get("words", 2))
        seed = int(params.get("seed", 2008))
        config_kw = dict(params.get("config") or {})
        config_kw.setdefault("seed", seed)
        caps = {k: v for k, v in (params.get("budget") or {}).items()
                if v is not None}
        budget = Budget(**caps) if caps else None
        directions = params.get("directions")
        if directions is not None:
            directions = {po: int(d) for po, d in directions.items()}
        ctx = state.context_for(req["blif"])
        start = time.perf_counter()
        try:
            flow = run_ced_flow(
                net, config=ApproxConfig.from_dict(config_kw),
                share_logic=bool(params.get("share_logic", False)),
                reliability_words=words, coverage_words=words,
                seed=seed, directions=directions,
                min_approx_pct=float(params.get("min_approx_pct",
                                                25.0)),
                lint_level=params.get("lint_level", "off"),
                ctx=ctx,
                checkpoint_dir=str(state.checkpoint_dir),
                proof_cache_dir=str(state.proof_dir),
                budget=budget,
                on_pass=lambda rec: emit(_pass_event(job_id, rec)))
        except BudgetExceeded as exc:
            emit({"kind": "failed", "job_id": job_id,
                  "error": str(exc),
                  "error_type": type(exc).__name__,
                  "detail": exc.to_dict()})
            return
        elapsed = time.perf_counter() - start
        state.jobs_run += 1
        doc = flow.to_dict()
        totals = flow.trace.cache_totals() if flow.trace else {}
        resumed = sum(1 for rec in flow.trace.passes
                      if rec.status == "resumed") if flow.trace else 0
        # "Warm" means the run was served from persistent state: passes
        # resumed from checkpoints.  (Proof-cache hits alone don't
        # qualify — a cold flow re-reads entries it just wrote.)
        emit({"kind": "done", "job_id": job_id, "result": doc,
              "flow_seconds": round(elapsed, 6),
              "cache_totals": totals,
              "resumed_passes": resumed,
              "warm": resumed > 0
              or totals.get("checkpoint", {}).get("hits", 0) > 0})
    except Exception as exc:          # worker must survive any request
        emit({"kind": "failed", "job_id": job_id,
              "error": f"{type(exc).__name__}: {exc}",
              "error_type": type(exc).__name__,
              "traceback": traceback.format_exc(limit=8)[-2000:]})


def _worker_main(shard: int, request_q, event_q, state_dir: str,
                 ctx_limit: int) -> None:
    """Worker loop (process or thread): requests in, events out."""
    state = WorkerState(shard, state_dir, ctx_limit)
    while True:
        req = request_q.get()
        if req is None:               # drain sentinel
            break
        run_flow_request(req, state, event_q.put)
    event_q.put({"kind": "worker_exit", "shard": shard,
                 "jobs_run": state.jobs_run})


class _Shard:
    """Parent-side handle of one worker (process or thread)."""

    def __init__(self, index: int, backend: str, state_dir: str,
                 ctx_limit: int, event_q, mp_ctx=None):
        self.index = index
        self.backend = backend
        self.state_dir = state_dir
        self.ctx_limit = ctx_limit
        self.event_q = event_q
        self.mp_ctx = mp_ctx
        self.request_q = None
        self.runner = None
        self.dispatched = 0
        self._spawn()

    def _spawn(self) -> None:
        args_of = lambda q: (self.index, q, self.event_q,  # noqa: E731
                             self.state_dir, self.ctx_limit)
        if self.backend == "process":
            self.request_q = self.mp_ctx.Queue()
            self.runner = self.mp_ctx.Process(
                target=_worker_main, args=args_of(self.request_q),
                name=f"serve-worker-{self.index}", daemon=True)
        else:
            self.request_q = queue_mod.Queue()
            self.runner = threading.Thread(
                target=_worker_main, args=args_of(self.request_q),
                name=f"serve-worker-{self.index}", daemon=True)
        self.runner.start()

    def alive(self) -> bool:
        return self.runner.is_alive()

    def respawn(self) -> None:
        """Replace a dead worker (warm disk state survives)."""
        if self.alive():
            return
        self._spawn()

    def submit(self, req: dict) -> None:
        self.dispatched += 1
        self.request_q.put(req)

    def close(self) -> None:
        try:
            self.request_q.put(None)
        except (OSError, ValueError):
            pass

    def join(self, timeout: float) -> None:
        self.runner.join(timeout)
        if self.backend == "process" and self.runner.is_alive():
            self.runner.terminate()
            self.runner.join(2.0)


class WorkerPool:
    """All shards plus the event-drain thread.

    ``on_event`` is called from the drain thread for every worker
    event; the app bridges it onto the asyncio loop.  ``backend``
    selects real worker processes (``process``, the default) or
    in-process threads (``thread`` — no multiprocessing primitives,
    used by tests and as an automatic fallback in sandboxes where
    semaphores are unavailable).
    """

    def __init__(self, workers: int, state_dir: str | Path,
                 on_event, backend: str = "process",
                 ctx_limit: int = DEFAULT_CTX_LIMIT):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        self.workers = max(int(workers), 1)
        self.state_dir = str(state_dir)
        self.on_event = on_event
        self.backend = backend
        self.ctx_limit = ctx_limit
        self.shards: list[_Shard] = []
        self.event_q = None
        self._drainer: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> str:
        """Spawn every shard; returns the backend actually in use."""
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        if self.backend == "process":
            try:
                import multiprocessing
                mp_ctx = multiprocessing.get_context("spawn")
                self.event_q = mp_ctx.Queue()
                self.shards = [
                    _Shard(i, "process", self.state_dir,
                           self.ctx_limit, self.event_q, mp_ctx)
                    for i in range(self.workers)]
            except (ImportError, OSError, PermissionError):
                # No multiprocessing primitives here (common in
                # sandboxes): fall back to warm threads.
                self.backend = "thread"
                self.shards = []
        if self.backend == "thread":
            self.event_q = queue_mod.Queue()
            self.shards = [
                _Shard(i, "thread", self.state_dir, self.ctx_limit,
                       self.event_q)
                for i in range(self.workers)]
        self._drainer = threading.Thread(target=self._drain,
                                         name="serve-event-drain",
                                         daemon=True)
        self._drainer.start()
        return self.backend

    def _drain(self) -> None:
        while True:
            event = self.event_q.get()
            if event is None:
                break
            try:
                self.on_event(event)
            except Exception:
                # An event consumer bug must not kill the drain loop.
                traceback.print_exc()

    def shard_of(self, blif: str) -> int:
        return shard_of(blif, len(self.shards))

    def submit(self, shard: int, req: dict) -> None:
        self.shards[shard].submit(req)

    def alive(self, shard: int) -> bool:
        return self.shards[shard].alive()

    def respawn(self, shard: int) -> None:
        self.shards[shard].respawn()

    def close(self, timeout: float = 10.0) -> None:
        """Graceful worker shutdown: drain sentinels, join, terminate."""
        for shard in self.shards:
            shard.close()
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            shard.join(max(deadline - time.monotonic(), 0.1))
        if self.event_q is not None:
            self.event_q.put(None)
        if self._drainer is not None:
            self._drainer.join(5.0)
