"""The serve job model: submit -> queued -> running -> done/failed.

A :class:`ServeJob` is one accepted circuit submission.  Its lifecycle
is strictly forward::

    queued -> running -> done | failed
    queued -> cancelled                  (DELETE before dispatch)

Every transition and every flow-pass completion appends a monotonically
sequenced event to the job, which the streaming endpoint replays as
NDJSON chunks; an :class:`asyncio.Event` wakes streamers and the
dispatcher waiting on completion.  The :class:`JobRegistry` owns all
jobs, hands out ids, and bounds memory by evicting the oldest finished
jobs beyond a retention limit.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time
from dataclasses import dataclass, field

__all__ = ["ServeJob", "JobRegistry", "JOB_STATES", "TERMINAL_STATES"]

#: Lifecycle states of a serve job.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States no job ever leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class ServeJob:
    """One accepted circuit submission and everything it produced."""

    job_id: str
    tenant: str
    priority: int
    blif: str
    params: dict
    shard: int
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: ``CedFlowResult.to_dict()`` of the finished flow.
    result: dict | None = None
    #: Server-side execution metadata (flow seconds, cache totals,
    #: warm/cold verdict) — kept out of ``result`` so the flow record
    #: stays bit-identical to a direct ``run_ced_flow`` run.
    stats: dict = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None
    #: Monotonically sequenced progress events (state changes, passes).
    events: list[dict] = field(default_factory=list)
    _seq: itertools.count = field(default_factory=itertools.count,
                                  repr=False)
    #: Set on every event append; streamers and the dispatcher wait on
    #: it and re-clear it themselves.
    changed: asyncio.Event = field(default_factory=asyncio.Event,
                                   repr=False)
    #: Set exactly once, on the terminal transition.
    finished: asyncio.Event = field(default_factory=asyncio.Event,
                                    repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, kind: str, **payload) -> dict:
        event = {"seq": next(self._seq), "kind": kind,
                 "job_id": self.job_id, "state": self.state,
                 "t": round(time.time() - self.submitted_at, 6),
                 **payload}
        self.events.append(event)
        self.changed.set()
        return event

    def transition(self, state: str, **payload) -> None:
        if self.terminal:
            return                        # a late event cannot resurrect
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        self.state = state
        if state == "running":
            self.started_at = time.time()
        if state in TERMINAL_STATES:
            self.finished_at = time.time()
        self.add_event("state", **payload)
        if state in TERMINAL_STATES:
            self.finished.set()

    def wall_time_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, with_result: bool = False) -> dict:
        doc = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "shard": self.shard,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_s": self.wall_time_s(),
            "queue_time_s": (round(self.started_at - self.submitted_at,
                                   6)
                             if self.started_at is not None else None),
            "params": dict(self.params),
            "events": len(self.events),
            "error": self.error,
            "error_type": self.error_type,
            "stats": dict(self.stats),
        }
        if with_result and self.result is not None:
            doc["result"] = self.result
        return doc


class JobRegistry:
    """All jobs the service knows, with bounded finished-job retention."""

    def __init__(self, retention: int = 256):
        self.retention = int(retention)
        self.jobs: dict[str, ServeJob] = {}
        self._counter = itertools.count(1)
        self._finished_order: list[str] = []

    def new_id(self, blif: str) -> str:
        digest = hashlib.sha256(blif.encode()).hexdigest()[:8]
        return f"j{next(self._counter):06d}-{digest}"

    def create(self, *, tenant: str, priority: int, blif: str,
               params: dict, shard: int) -> ServeJob:
        job = ServeJob(job_id=self.new_id(blif), tenant=tenant,
                       priority=priority, blif=blif, params=params,
                       shard=shard)
        job.add_event("state")            # the initial "queued" event
        self.jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> ServeJob | None:
        return self.jobs.get(job_id)

    def note_finished(self, job: ServeJob) -> None:
        """Record a terminal job and evict beyond the retention bound."""
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.retention:
            victim = self._finished_order.pop(0)
            self.jobs.pop(victim, None)

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    def recent(self, limit: int = 50) -> list[ServeJob]:
        ordered = sorted(self.jobs.values(),
                         key=lambda j: j.submitted_at, reverse=True)
        return ordered[:limit]
