"""Hand-rolled HTTP/1.1 over asyncio streams.

The serve layer deliberately avoids ``http.server`` (thread-per-request,
no backpressure) and keeps the wire format small enough to audit: a
request parser over :class:`asyncio.StreamReader` (request line, headers,
``Content-Length``-delimited body with a hard size cap), plain and
chunked response writers, and a couple of JSON helpers.  Everything is
stdlib-only and carries no service semantics — routing, quotas, and the
job model live in :mod:`repro.serve.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["HttpError", "HttpRequest", "read_request", "write_response",
           "json_response", "error_response", "start_chunked",
           "write_chunk", "end_chunked", "REASONS"]

#: Reason phrases for the status codes the service emits.
REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request line / header line we will buffer.
MAX_LINE = 16 * 1024

#: Most headers a request may carry.
MAX_HEADERS = 64


class HttpError(Exception):
    """A malformed or oversized request; carries the response status.

    ``detail`` keys are merged into the structured error document
    (e.g. the offending config ``field`` of a rejected submission).
    """

    def __init__(self, status: int, message: str, **detail):
        super().__init__(message)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body as JSON; raises :class:`HttpError` (400) when bad."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""                       # clean EOF between requests
        raise HttpError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long")
    if len(line) > MAX_LINE:
        raise HttpError(400, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = 8 * 1024 * 1024
                       ) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF before a request line.

    Raises :class:`HttpError` on malformed input — the caller answers
    with the carried status and closes the connection.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"bad request line {request_line[:80]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {key: values[-1] for key, values
             in parse_qs(split.query, keep_blank_values=True).items()}

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line:
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"bad header line {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                                 f"{max_body}-byte limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body")
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(method=method.upper(), path=unquote(split.path),
                       query=query, headers=headers, body=body)


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_response(writer: asyncio.StreamWriter, status: int,
                   body: bytes, content_type: str = "application/json",
                   keep_alive: bool = True,
                   extra_headers: dict[str, str] | None = None) -> None:
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers) + body)


def json_response(writer: asyncio.StreamWriter, status: int, doc,
                  keep_alive: bool = True,
                  extra_headers: dict[str, str] | None = None) -> None:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    write_response(writer, status, body, keep_alive=keep_alive,
                   extra_headers=extra_headers)


def error_response(writer: asyncio.StreamWriter, status: int,
                   error: str, message: str = "",
                   keep_alive: bool = True, **detail) -> None:
    """The structured error document every failure path uses."""
    doc = {"error": error, "status": status, **detail}
    if message:
        doc["message"] = message
    json_response(writer, status, doc, keep_alive=keep_alive)


def start_chunked(writer: asyncio.StreamWriter, status: int = 200,
                  content_type: str = "application/x-ndjson") -> None:
    """Begin a chunked (streaming) response; ends the connection after."""
    writer.write(_head(status, {
        "Content-Type": content_type,
        "Transfer-Encoding": "chunked",
        "Connection": "close",
        # Defeat buffering proxies between us and a curl -N reader.
        "Cache-Control": "no-cache",
    }))


def write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    if not data:
        return                       # zero-length chunk would end the body
    writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")


def end_chunked(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
