"""CED-synthesis-as-a-service: the asyncio application.

One :class:`CedService` owns the listening socket, the job registry,
the admission controller (bounded queue + per-tenant token buckets),
per-shard priority queues with one dispatcher task each, and the
:class:`~repro.serve.pool.WorkerPool` of warm workers.  The HTTP API:

==========================  =========================================
``POST   /v1/jobs``         submit a circuit (JSON envelope or raw
                            BLIF body); 202 with the job id, 429 on
                            backpressure/quota, 503 while draining
``GET    /v1/jobs``         recent jobs (most recent first)
``GET    /v1/jobs/<id>``    job state document
``GET    /v1/jobs/<id>/result``  the finished flow record
                            (``CedFlowResult.to_dict()``); 409 until
                            the job is terminal
``GET    /v1/jobs/<id>/events``  chunked NDJSON progress stream
                            (state changes + per-pass events), closed
                            after the terminal event
``DELETE /v1/jobs/<id>``    cancel a queued job (409 once running)
``GET    /v1/healthz``      liveness + drain state
``GET    /v1/stats``        counters: queue, admission, tenants,
                            warm/cold outcomes, proof-cache stats
==========================  =========================================

Graceful drain (SIGTERM or :meth:`CedService.request_drain`): stop
accepting connections, answer in-flight submissions with 503, let every
queued and running job finish (bounded by ``drain_timeout_s``), shut
the workers down, then release :attr:`CedService.stopped`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path

from .jobs import JobRegistry, ServeJob
from .pool import BACKENDS, DEFAULT_CTX_LIMIT, WorkerPool
from .protocol import (HttpError, HttpRequest, end_chunked,
                       error_response, json_response, read_request,
                       start_chunked, write_chunk)
from .quota import AdmissionController

__all__ = ["ServeConfig", "CedService"]

#: Sentinel closing a shard's dispatcher queue.
_CLOSE = (float("inf"), -1, None)


@dataclass
class ServeConfig:
    """Everything the service's behavior is parameterized on."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    backend: str = "process"            # process | thread
    state_dir: str = ".serve_cache"
    #: Bound on jobs admitted but not yet running (backpressure).
    max_queue: int = 16
    tenant_rate: float = 8.0            # tokens/second per tenant
    tenant_burst: float = 16.0
    retention: int = 256
    max_body_bytes: int = 8 * 1024 * 1024
    drain_timeout_s: float = 60.0
    default_words: int = 2
    default_seed: int = 2008
    #: Server-side budget rails: act as the default when a request
    #: names no budget and as the hard cap when it does.
    budget_deadline_s: float | None = None
    budget_bdd_nodes: int | None = None
    budget_sat_conflicts: int | None = None
    budget_repair_rounds: int | None = None
    ctx_limit: int = DEFAULT_CTX_LIMIT

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


class CedService:
    """The long-running service; one instance per listening socket."""

    def __init__(self, config: ServeConfig | None = None,
                 log=None):
        self.config = config or ServeConfig()
        self.log = log
        self.registry = JobRegistry(retention=self.config.retention)
        self.admission = AdmissionController(
            capacity=self.config.max_queue,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst)
        self.pool = WorkerPool(
            self.config.workers, self.config.state_dir,
            on_event=self._event_from_worker,
            backend=self.config.backend,
            ctx_limit=self.config.ctx_limit)
        self.counters = {
            "submitted": 0, "accepted": 0, "completed": 0,
            "failed": 0, "cancelled": 0,
            "rejected_queue_full": 0, "rejected_quota": 0,
            "rejected_draining": 0, "rejected_invalid": 0,
            "warm_done": 0, "cold_done": 0,
        }
        #: Static-discharge totals accumulated from per-job
        #: cache_totals: implication checks answered by the
        #: repro.analyze rung (hits) vs passed to BDD/SAT (misses).
        self.static_totals = {
            "po_discharged": 0, "po_attempts": 0,
            "node_discharged": 0, "node_attempts": 0,
        }
        self.queued = 0
        self.queue_depth_max = 0
        self.in_flight = 0
        self.draining = False
        self.started_at: float | None = None
        self.stopped = asyncio.Event()
        self._seq = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._shard_queues: list[asyncio.PriorityQueue] = []
        self._dispatchers: list[asyncio.Task] = []
        self._drain_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    def _emit(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.started_at = time.monotonic()
        backend = self.pool.start()
        if backend != self.config.backend:
            self._emit(f"[serve] backend fell back to {backend!r}")
        self._shard_queues = [asyncio.PriorityQueue()
                              for _ in self.pool.shards]
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch(i))
            for i in range(len(self._shard_queues))]
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self._emit(f"[serve] listening on {self.config.host}:"
                   f"{self.port} ({len(self.pool.shards)} "
                   f"{backend} workers, queue bound "
                   f"{self.config.max_queue})")

    def request_drain(self) -> None:
        """Thread/signal-safe entry to the graceful drain."""
        assert self._loop is not None, "service not started"
        self._loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        if self.draining:
            return
        self.draining = True
        self._emit(f"[serve] draining: {self.queued} queued, "
                   f"{self.in_flight} running")
        # The listener stays open until the drain completes: new
        # submissions get an explicit 503 (so load balancers fail
        # over), and clients can keep collecting finished results.
        self._drain_task = asyncio.ensure_future(self._finish_drain())

    async def _finish_drain(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            if self.queued == 0 and self.in_flight == 0:
                break
            await asyncio.sleep(0.02)
        # Whatever is still queued past the timeout is cancelled (the
        # dispatcher skips cancelled jobs when it pops them).
        for job in list(self.registry.jobs.values()):
            if job.state == "queued":
                self._finish_job(job, "cancelled",
                                 reason="drain timeout")
        for queue in self._shard_queues:
            queue.put_nowait(_CLOSE)
        await asyncio.gather(*self._dispatchers,
                             return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, self.pool.close)
        if self._server is not None:
            self._server.close()
            with suppress(Exception):
                await self._server.wait_closed()
        self._emit("[serve] drained cleanly")
        self.stopped.set()

    async def run_until_stopped(self) -> None:
        """``start()`` + block until a drain completes."""
        await self.start()
        await self.stopped.wait()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _derived_budget(self, requested: dict | None) -> dict | None:
        """Per-request guard budget from request + server rails.

        Server values are both the default (request silent) and the
        ceiling (request asks for more): the effective limit is the
        smaller of the two, so a tenant can tighten but never loosen
        the operator's rails.
        """
        requested = requested or {}
        rails = {
            "deadline_s": self.config.budget_deadline_s,
            "bdd_node_cap": self.config.budget_bdd_nodes,
            "sat_conflict_cap": self.config.budget_sat_conflicts,
            "repair_round_cap": self.config.budget_repair_rounds,
        }
        caps: dict = {}
        for key, rail in rails.items():
            asked = requested.get(key)
            if asked is not None:
                asked = float(asked) if key == "deadline_s" \
                    else int(asked)
                if asked < 0:
                    raise HttpError(400, f"budget.{key} must be >= 0")
            if asked is None:
                effective = rail
            elif rail is None:
                effective = asked
            else:
                effective = min(asked, rail)
            if effective is not None:
                caps[key] = effective
        return caps or None

    def _enqueue(self, job: ServeJob) -> None:
        self.queued += 1
        self.queue_depth_max = max(self.queue_depth_max, self.queued)
        self._shard_queues[job.shard].put_nowait(
            (job.priority, next(self._seq), job))

    async def _dispatch(self, shard: int) -> None:
        """One-at-a-time feeder of this shard's worker."""
        queue = self._shard_queues[shard]
        while True:
            item = await queue.get()
            if item[2] is None:
                break
            job: ServeJob = item[2]
            self.queued -= 1
            if job.terminal:             # cancelled while queued
                continue
            self.in_flight += 1
            job.add_event("dispatch", shard=shard)
            self.pool.submit(shard, {"job_id": job.job_id,
                                     "blif": job.blif,
                                     "params": job.params})
            await self._await_job(job, shard)

    async def _await_job(self, job: ServeJob, shard: int) -> None:
        waiter = asyncio.ensure_future(job.finished.wait())
        try:
            while True:
                done, _ = await asyncio.wait({waiter}, timeout=0.5)
                if done:
                    return
                if not self.pool.alive(shard):
                    self._finish_job(
                        job, "failed",
                        error="worker process died mid-job",
                        error_type="WorkerDied")
                    self.pool.respawn(shard)
                    return
        finally:
            waiter.cancel()
            with suppress(asyncio.CancelledError):
                await waiter

    def _finish_job(self, job: ServeJob, state: str, **payload) -> None:
        if job.terminal:
            return
        if state == "failed":
            job.error = payload.get("error")
            job.error_type = payload.get("error_type")
            self.counters["failed"] += 1
        elif state == "cancelled":
            self.counters["cancelled"] += 1
        job.transition(state, **payload)
        self.registry.note_finished(job)

    # -- worker events (arrive on the drain thread) ----------------------
    def _event_from_worker(self, event: dict) -> None:
        if self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._on_event, event)

    def _on_event(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "worker_exit":
            return
        job = self.registry.get(event.get("job_id", ""))
        if job is None or job.terminal:
            return
        if kind == "started":
            job.transition("running", shard=event.get("shard"))
        elif kind == "pass":
            job.add_event("pass", **{
                k: event[k] for k in ("pass", "status", "wall_time_s",
                                      "cache") if k in event})
        elif kind == "done":
            self.in_flight -= 1
            job.result = event.get("result")
            job.stats = {k: event[k]
                         for k in ("flow_seconds", "cache_totals",
                                   "resumed_passes", "warm")
                         if k in event}
            self.counters["completed"] += 1
            self.counters["warm_done" if event.get("warm")
                          else "cold_done"] += 1
            totals = event.get("cache_totals") or {}
            for kind, prefix in (("static", "po"),
                                 ("static_node", "node")):
                counts = totals.get(kind) or {}
                hits = int(counts.get("hits", 0))
                misses = int(counts.get("misses", 0))
                self.static_totals[f"{prefix}_discharged"] += hits
                self.static_totals[f"{prefix}_attempts"] += \
                    hits + misses
            job.transition("done", warm=bool(event.get("warm")),
                           flow_seconds=event.get("flow_seconds"))
            self.registry.note_finished(job)
        elif kind == "failed":
            self.in_flight -= 1
            detail = {}
            if isinstance(event.get("detail"), dict):
                detail["detail"] = event["detail"]
            self._finish_job(job, "failed",
                             error=event.get("error"),
                             error_type=event.get("error_type"),
                             **detail)

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes)
                except HttpError as exc:
                    error_response(writer, exc.status, "bad_request",
                                   str(exc), keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                streamed = await self._route(request, writer)
                await writer.drain()
                if streamed or not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, request: HttpRequest, writer) -> bool:
        """Dispatch one request; True when the response was streamed."""
        method, path = request.method, request.path.rstrip("/")
        try:
            if path == "/v1/jobs" and method == "POST":
                self._submit(request, writer)
            elif path == "/v1/jobs" and method == "GET":
                self._list_jobs(request, writer)
            elif path == "/v1/healthz" and method == "GET":
                json_response(writer, 200, self._health_doc())
            elif path == "/v1/stats" and method == "GET":
                json_response(writer, 200, self._stats_doc())
            elif path.startswith("/v1/jobs/"):
                return await self._job_route(request, writer, path)
            else:
                error_response(writer, 404, "not_found",
                               f"no route for {method} {path}")
        except HttpError as exc:
            error_response(writer, exc.status, "bad_request", str(exc),
                           **exc.detail)
        except Exception as exc:      # pragma: no cover - last resort
            error_response(writer, 500, "internal_error",
                           f"{type(exc).__name__}: {exc}")
        return False

    async def _job_route(self, request: HttpRequest, writer,
                         path: str) -> bool:
        parts = path.split("/")        # "", "v1", "jobs", id[, leaf]
        job_id, leaf = parts[3], parts[4] if len(parts) > 4 else ""
        job = self.registry.get(job_id)
        if job is None:
            error_response(writer, 404, "unknown_job",
                           f"no job {job_id!r}")
            return False
        if leaf == "" and request.method == "GET":
            json_response(writer, 200, job.to_dict())
        elif leaf == "" and request.method == "DELETE":
            self._cancel(job, writer)
        elif leaf == "result" and request.method == "GET":
            if job.state == "done":
                json_response(writer, 200, job.to_dict(
                    with_result=True))
            elif job.terminal:
                error_response(writer, 409, "job_" + job.state,
                               job.error or f"job {job.state}",
                               error_type=job.error_type)
            else:
                error_response(writer, 409, "job_not_finished",
                               f"job is {job.state}",
                               state=job.state)
        elif leaf == "events" and request.method == "GET":
            await self._stream_events(job, request, writer)
            return True
        else:
            error_response(writer, 405, "method_not_allowed",
                           f"{request.method} on {path}")
        return False

    # -- submission ------------------------------------------------------
    def _parse_submission(self, request: HttpRequest) -> tuple[str,
                                                               dict]:
        """(blif, params) from a JSON envelope or a raw BLIF body."""
        content_type = request.headers.get("content-type", "")
        if "json" in content_type:
            doc = request.json()
            if not isinstance(doc, dict) or \
                    not isinstance(doc.get("blif"), str):
                raise HttpError(400, "JSON submissions need a string "
                                     "'blif' field")
            blif = doc["blif"]
            source = doc
        else:                          # raw BLIF; knobs via the query
            blif = request.body.decode("utf-8", "replace")
            source = dict(request.query)
        if not blif.strip():
            raise HttpError(400, "empty circuit submission")

        def pick(key, default, cast):
            value = source.get(key, default)
            try:
                return cast(value)
            except (TypeError, ValueError):
                raise HttpError(400, f"bad value for {key!r}: "
                                     f"{value!r}")

        params = {
            "words": pick("words", self.config.default_words, int),
            "seed": pick("seed", self.config.default_seed, int),
            "share_logic": pick("share_logic", False,
                                lambda v: str(v).lower()
                                in ("1", "true", "yes")),
            "min_approx_pct": pick("min_approx_pct", 25.0, float),
        }
        if params["words"] < 1:
            raise HttpError(400, "words must be >= 1")
        direction = str(source.get("direction", "auto"))
        if direction not in ("auto", "0", "1"):
            raise HttpError(400, f"bad direction {direction!r}")
        if isinstance(source, dict) and \
                isinstance(source.get("directions"), dict):
            params["directions"] = {
                str(po): int(d)
                for po, d in source["directions"].items()}
        elif direction in ("0", "1"):
            params["directions"] = {"__all__": int(direction)}
        if isinstance(source, dict) and \
                isinstance(source.get("config"), dict):
            params["config"] = dict(source["config"])

        # Engine / error-budget selection: top-level fields (or query
        # keys on raw-BLIF submissions) fold into the config object and
        # are validated *here*, so a bad combination costs a structured
        # 400 instead of queue space and a failed job.
        config = params.get("config", {})
        if source.get("engine") is not None:
            config["engine"] = str(source["engine"])
        error_obj = source.get("error")
        if error_obj is not None and not isinstance(error_obj, dict):
            raise HttpError(400, "error must be an object with "
                                 "metric/bound", field="error")
        if error_obj is not None:
            config["error"] = dict(error_obj)
        elif any(k in source for k in ("error_metric", "error_bound",
                                       "error_exact_threshold")):
            error_kw = {"metric": str(source.get("error_metric", "")),
                        "bound": pick("error_bound", -1.0, float)}
            if "error_exact_threshold" in source:
                error_kw["exact_threshold"] = pick(
                    "error_exact_threshold", 12, int)
            config["error"] = error_kw
        if config:
            from repro.approx import ApproxConfig, ConfigError
            try:
                ApproxConfig.from_dict(config)
            except ConfigError as exc:
                detail = {k: v for k, v in exc.to_dict().items()
                          if k in ("field", "value")}
                raise HttpError(400, f"config: {exc.message}", **detail)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"config: {exc}")
            params["config"] = config

        requested_budget = source.get("budget") \
            if isinstance(source, dict) else None
        if requested_budget is not None and \
                not isinstance(requested_budget, dict):
            raise HttpError(400, "budget must be an object")
        budget = self._derived_budget(requested_budget)
        if budget is not None:
            params["budget"] = budget

        tenant = str(source.get("tenant", "") or "anonymous")[:64]
        priority = pick("priority", 10, int)
        params["_tenant"] = tenant
        params["_priority"] = max(0, min(int(priority), 100))
        return blif, params

    def _submit(self, request: HttpRequest, writer) -> None:
        self.counters["submitted"] += 1
        if self.draining:
            self.counters["rejected_draining"] += 1
            error_response(writer, 503, "draining",
                           "service is draining; resubmit elsewhere",
                           keep_alive=False)
            return
        blif, params = self._parse_submission(request)
        tenant = params.pop("_tenant")
        priority = params.pop("_priority")

        # Validate the circuit before burning queue space or tokens.
        from repro.network import BlifError, parse_blif
        try:
            network = parse_blif(blif, source="submission")
        except BlifError as exc:
            self.counters["rejected_invalid"] += 1
            raise HttpError(400, f"invalid BLIF: {exc}")
        if params.get("directions") == {"__all__": 0} or \
                params.get("directions") == {"__all__": 1}:
            value = params["directions"]["__all__"]
            params["directions"] = {po: value
                                    for po in network.outputs}

        verdict = self.admission.admit(tenant, self.queued)
        if not verdict:
            self.counters["rejected_queue_full"
                          if verdict.reason == "queue_full"
                          else "rejected_quota"] += 1
            error_response(
                writer, 429, verdict.reason,
                "queue is full" if verdict.reason == "queue_full"
                else f"tenant {tenant!r} is over its request quota",
                retry_after_s=verdict.retry_after_s,
                queued=self.queued, capacity=self.admission.capacity)
            return

        shard = self.pool.shard_of(blif)
        job = self.registry.create(tenant=tenant, priority=priority,
                                   blif=blif, params=params,
                                   shard=shard)
        self.counters["accepted"] += 1
        self._enqueue(job)
        json_response(writer, 202, {
            "job_id": job.job_id, "state": job.state, "shard": shard,
            "tenant": tenant, "priority": priority,
            "links": {
                "self": f"/v1/jobs/{job.job_id}",
                "result": f"/v1/jobs/{job.job_id}/result",
                "events": f"/v1/jobs/{job.job_id}/events",
            }})

    def _cancel(self, job: ServeJob, writer) -> None:
        if job.terminal:
            json_response(writer, 200, job.to_dict())
            return
        if job.state == "running":
            error_response(writer, 409, "job_running",
                           "running jobs cannot be cancelled")
            return
        self._finish_job(job, "cancelled", reason="client request")
        json_response(writer, 200, job.to_dict())

    def _list_jobs(self, request: HttpRequest, writer) -> None:
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise HttpError(400, "bad limit")
        json_response(writer, 200, {
            "jobs": [job.to_dict()
                     for job in self.registry.recent(limit)],
            "counts": self.registry.counts()})

    # -- streaming -------------------------------------------------------
    async def _stream_events(self, job: ServeJob,
                             request: HttpRequest, writer) -> None:
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            raise HttpError(400, "bad since")
        start_chunked(writer)
        index = 0
        try:
            while True:
                while index < len(job.events):
                    event = job.events[index]
                    index += 1
                    if event["seq"] < since:
                        continue
                    write_chunk(writer, (json.dumps(
                        event, sort_keys=True) + "\n").encode())
                await writer.drain()
                if job.terminal and index >= len(job.events):
                    break
                job.changed.clear()
                if index < len(job.events):
                    continue           # raced with a new event
                with suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(job.changed.wait(),
                                           timeout=1.0)
            end_chunked(writer)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass                       # client went away mid-stream

    # -- documents -------------------------------------------------------
    def _health_doc(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.queued,
            "in_flight": self.in_flight,
            "workers": len(self.pool.shards),
            "backend": self.pool.backend,
        }

    def _stats_doc(self) -> dict:
        from repro.lab.proofs import ProofCache
        proofs = ProofCache(Path(self.config.state_dir) / "proofs")
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        return {
            "uptime_s": round(uptime, 3),
            "status": "draining" if self.draining else "ok",
            "workers": len(self.pool.shards),
            "backend": self.pool.backend,
            "queue": {"depth": self.queued,
                      "max_depth": self.queue_depth_max,
                      "capacity": self.admission.capacity,
                      "in_flight": self.in_flight},
            "counters": dict(self.counters),
            "admission": self.admission.snapshot(),
            "registry": self.registry.counts(),
            "proof_cache": proofs.stats(),
            "static_discharge": dict(self.static_totals),
        }
