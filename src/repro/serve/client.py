"""Blocking client for the serve API (tests, benchmarks, CI smoke).

Built on :mod:`http.client` so it shares no code with the server — the
wire format is exercised for real.  One :class:`ServeClient` holds one
*persistent* keep-alive connection per thread (the server speaks
HTTP/1.1 keep-alive) and reconnects transparently when the socket went
stale — a server-side drain, an idle timeout, or a restart between
calls.  A request is retried at most once, and only when it failed on a
*reused* connection before any response byte arrived (the classic
stale-keep-alive race); a failure on a freshly opened connection is a
real error and propagates.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from http.client import HTTPConnection

__all__ = ["ServeClient", "ServeError"]

#: Errors that mean "the reused socket was stale": the server closed
#: its end between our requests.  Safe to retry once on a fresh
#: connection because no response bytes were received.
_STALE_ERRORS = (http.client.BadStatusLine,
                 http.client.CannotSendRequest,
                 http.client.ResponseNotReady,
                 ConnectionError, BrokenPipeError, OSError)


class ServeError(Exception):
    """A non-2xx response; carries the structured error document."""

    def __init__(self, status: int, doc: dict):
        message = doc.get("message") or doc.get("error") or "error"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.doc = doc


class ServeClient:
    """Minimal synchronous client of one serve endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: New sockets opened over this client's lifetime (all threads);
        #: a keep-alive regression shows up as one count per request.
        self.connections_opened = 0
        self._local = threading.local()

    # -- plumbing --------------------------------------------------------
    def _connection(self) -> tuple[HTTPConnection, bool]:
        """This thread's connection; ``(conn, was_just_opened)``."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, False
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        self._local.conn = conn
        self.connections_opened += 1
        return conn, True

    def close(self) -> None:
        """Drop this thread's persistent connection (idempotent)."""
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            conn.close()

    def _request(self, method: str, path: str,
                 body: bytes | None = None,
                 content_type: str = "application/json"
                 ) -> tuple[int, dict]:
        for attempt in (0, 1):
            conn, fresh = self._connection()
            try:
                headers = {}
                if body is not None:
                    headers["Content-Type"] = content_type
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except _STALE_ERRORS as exc:
                # The socket died under us.  Only a previously-reused
                # connection earns a silent retry; a fresh one failing
                # means the server is actually unreachable.  A timeout
                # is never retried: the server may well have processed
                # the request, and replaying a POST would duplicate it.
                self.close()
                if fresh or attempt or isinstance(exc, TimeoutError):
                    raise
                continue
            if response.will_close:
                self.close()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                doc = {"error": "unparseable_body",
                       "body": raw[:200].decode("utf-8", "replace")}
            return response.status, doc
        raise AssertionError("unreachable")          # pragma: no cover

    def _checked(self, method: str, path: str,
                 body: bytes | None = None) -> dict:
        status, doc = self._request(method, path, body)
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    # -- API -------------------------------------------------------------
    def submit(self, blif: str, *, tenant: str = "anonymous",
               priority: int = 10, words: int | None = None,
               seed: int | None = None, budget: dict | None = None,
               **extra) -> dict:
        """POST a circuit; returns the 202 acceptance document."""
        envelope: dict = {"blif": blif, "tenant": tenant,
                          "priority": priority, **extra}
        if words is not None:
            envelope["words"] = words
        if seed is not None:
            envelope["seed"] = seed
        if budget is not None:
            envelope["budget"] = budget
        return self._checked("POST", "/v1/jobs",
                             json.dumps(envelope).encode())

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job document including the flow record."""
        return self._checked("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/v1/jobs/{job_id}")

    def health(self) -> dict:
        return self._checked("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def jobs(self, limit: int = 50) -> dict:
        return self._checked("GET", f"/v1/jobs?limit={limit}")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its state document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def run(self, blif: str, timeout: float = 120.0, **submit_kw
            ) -> dict:
        """Submit, wait, and return the full result document."""
        accepted = self.submit(blif, **submit_kw)
        state = self.wait(accepted["job_id"], timeout=timeout)
        if state["state"] != "done":
            raise ServeError(409, {"error": f"job_{state['state']}",
                                   "message": state.get("error")
                                   or state["state"]})
        return self.result(accepted["job_id"])

    def events(self, job_id: str, since: int = 0):
        """Yield the job's NDJSON progress events (blocks until done).

        Streams ride a dedicated connection: the server ends a chunked
        response by closing, which must not tear down the persistent
        request/response connection.
        """
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            conn.request("GET",
                         f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except ValueError:
                    doc = {"error": "unparseable_body"}
                raise ServeError(response.status, doc)
            # http.client undoes the chunking for us: read lines.
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            conn.close()
