"""Admission control: per-tenant token buckets + bounded-queue backpressure.

Every submission passes through one :class:`AdmissionController` before
it may enter the scheduler queue.  The controller is deliberately a pure,
synchronous, clock-injected object — no asyncio, no locks beyond the
caller's single-threaded event loop — so its fairness and backpressure
behavior can be property-tested exhaustively.

Two independent gates, checked in order:

* **backpressure** — the global queue is bounded; a submission arriving
  with ``queued >= capacity`` is rejected with ``queue_full`` (the HTTP
  layer turns this into a 429).  Nothing ever blocks: rejection is the
  only overload response, so the queue depth is a hard invariant.
* **tenant quota** — a classic token bucket per tenant (``rate`` tokens
  per second, ``burst`` capacity, lazily refilled from the injected
  monotonic clock).  A tenant out of tokens is rejected with
  ``quota_exceeded`` and told when the next token arrives
  (``retry_after_s``), leaving room for competing tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic

__all__ = ["TokenBucket", "AdmissionController", "Admission"]


class TokenBucket:
    """Token bucket with lazy refill on an injected monotonic clock."""

    def __init__(self, rate: float, burst: float,
                 now: float = 0.0):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._stamp = float(now)

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._stamp, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        self._refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            return True
        return False

    def retry_after(self, now: float, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available."""
        self._refill(now)
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass
class Admission:
    """The controller's verdict on one submission."""

    admitted: bool
    reason: str = ""                 # queue_full | quota_exceeded
    retry_after_s: float = 0.0

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Bounded-queue backpressure plus per-tenant token buckets.

    The caller owns the queued-job count and reports it through
    :meth:`admit`'s ``queued`` argument (this keeps the controller free
    of any coupling to the scheduler's data structures).  ``clock`` is
    injectable for deterministic tests; it defaults to
    :func:`time.monotonic`.
    """

    def __init__(self, capacity: int, tenant_rate: float = 4.0,
                 tenant_burst: float = 8.0, clock=monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self.clock = clock
        self.buckets: dict[str, TokenBucket] = {}
        #: Rejection tallies by reason, for the stats endpoint.
        self.rejections: dict[str, int] = {"queue_full": 0,
                                           "quota_exceeded": 0}

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst,
                                 now=self.clock())
            self.buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, queued: int) -> Admission:
        """Decide one submission.  Pure decision — nothing is enqueued.

        Backpressure is checked before the quota so a saturated queue
        never burns a tenant's tokens: the tenant retries without being
        double-punished.
        """
        if queued >= self.capacity:
            self.rejections["queue_full"] += 1
            return Admission(False, "queue_full",
                             retry_after_s=1.0)
        now = self.clock()
        bucket = self.bucket(tenant)
        if not bucket.try_take(now):
            self.rejections["quota_exceeded"] += 1
            return Admission(False, "quota_exceeded",
                             retry_after_s=round(
                                 bucket.retry_after(now), 3))
        return Admission(True)

    def snapshot(self) -> dict:
        """JSON-safe counters for the stats endpoint."""
        now = self.clock()
        tenants = {}
        for name, bucket in sorted(self.buckets.items()):
            bucket._refill(now)
            tenants[name] = {"tokens": round(bucket.tokens, 3),
                             "rate": bucket.rate,
                             "burst": bucket.burst}
        return {"capacity": self.capacity,
                "rejections": dict(self.rejections),
                "tenants": tenants}
