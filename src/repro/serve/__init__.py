"""CED-synthesis-as-a-service: async HTTP front end over warm workers.

See DESIGN.md §14 for the architecture.  The public surface:

* :class:`ServeConfig` / :class:`CedService` — the asyncio application
  (``repro.cli serve`` is a thin wrapper around it);
* :class:`ServeClient` — a blocking stdlib client for tests and tools;
* :class:`WorkerPool` — the sharded warm-worker layer, usable on its
  own;
* :class:`AdmissionController` — bounded-queue + token-bucket admission.
"""

from .app import CedService, ServeConfig
from .client import ServeClient, ServeError
from .jobs import JOB_STATES, TERMINAL_STATES, JobRegistry, ServeJob
from .pool import BACKENDS, WorkerPool, WorkerState, shard_of
from .quota import Admission, AdmissionController, TokenBucket

__all__ = [
    "CedService", "ServeConfig", "ServeClient", "ServeError",
    "JobRegistry", "ServeJob", "JOB_STATES", "TERMINAL_STATES",
    "WorkerPool", "WorkerState", "shard_of", "BACKENDS",
    "Admission", "AdmissionController", "TokenBucket",
]
