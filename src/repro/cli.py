"""Command-line interface: the flow on BLIF files.

Subcommands:

* ``info``  — parse a BLIF file and print structure/statistics;
* ``synth`` — synthesize an approximate logic circuit and write it as
  BLIF (directions from reliability analysis or forced);
* ``ced``   — run the full CED flow and print the evaluation report;
* ``gen``   — export a suite benchmark (MCNC stand-in) as BLIF.

Usage: ``python -m repro.cli <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import sys

from repro.approx import (ApproxConfig, approximation_percentages,
                          synthesize_approximation)
from repro.bench import load_benchmark
from repro.ced import run_ced_flow
from repro.network import read_blif, write_blif
from repro.reliability import analyze_reliability
from repro.synth import quick_map


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cube-drop-threshold", type=float,
                        default=ApproxConfig.cube_drop_threshold,
                        help="stage-1 cube significance cutoff")
    parser.add_argument("--dc-threshold", type=float,
                        default=ApproxConfig.dc_threshold,
                        help="relative observability below which a "
                             "fanin is requested DC")
    parser.add_argument("--check", choices=("auto", "bdd", "sat", "sim"),
                        default="auto", help="correctness check backend")
    parser.add_argument("--seed", type=int, default=2008)


def _config_from(args: argparse.Namespace) -> ApproxConfig:
    return ApproxConfig(cube_drop_threshold=args.cube_drop_threshold,
                        dc_threshold=args.dc_threshold,
                        check=args.check, seed=args.seed)


def _directions_for(network, args) -> dict[str, int]:
    if args.direction in ("0", "1"):
        return {po: int(args.direction) for po in network.outputs}
    report = analyze_reliability(quick_map(network), n_words=args.words,
                                 seed=args.seed)
    return report.approximations


def cmd_info(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    mapped = quick_map(network)
    levels = network.depth()
    print(f"model    : {network.name}")
    print(f"inputs   : {len(network.inputs)}")
    print(f"outputs  : {len(network.outputs)}")
    print(f"nodes    : {network.num_nodes}")
    print(f"literals : {network.total_literals()}")
    print(f"depth    : {levels}")
    print(f"mapped   : {mapped.gate_count} gates "
          f"(lib {mapped.library.name}), delay {mapped.delay():.2f}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    directions = _directions_for(network, args)
    result = synthesize_approximation(network, directions,
                                      _config_from(args))
    pct = approximation_percentages(network, result.approx, directions)
    write_blif(result.approx, args.out)
    print(f"wrote {args.out}")
    print(f"correct       : {result.all_correct} "
          f"({result.check_method}-checked)")
    print(f"nodes         : {network.num_nodes} -> "
          f"{result.approx.num_nodes}")
    for po in network.outputs:
        direction = directions[po]
        print(f"  {po}: {direction}-approximation, "
              f"{pct[po]:.1f}% approximation percentage")
    return 0 if result.all_correct else 1


def cmd_ced(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    directions = None
    if args.direction in ("0", "1"):
        directions = {po: int(args.direction)
                      for po in network.outputs}
    flow = run_ced_flow(network, config=_config_from(args),
                        share_logic=args.share_logic,
                        reliability_words=args.words,
                        coverage_words=args.words,
                        directions=directions, seed=args.seed)
    summary = flow.summary()
    print(f"circuit               : {network.name} "
          f"({int(summary['gates'])} mapped gates)")
    print(f"area overhead         : {summary['area_overhead_pct']:.1f}%")
    print(f"power overhead        : "
          f"{summary['power_overhead_pct']:.1f}%")
    print(f"approximation         : "
          f"{summary['approximation_pct']:.1f}%")
    print(f"max CED coverage      : "
          f"{summary['max_ced_coverage_pct']:.1f}%")
    print(f"achieved CED coverage : "
          f"{summary['ced_coverage_pct']:.1f}%")
    print(f"approx delay change   : "
          f"{summary['delay_change_pct']:+.1f}%")
    if args.share_logic:
        print(f"shared gates          : "
              f"{int(summary['shared_gates'])}")
    if args.out:
        write_blif(flow.approx_result.approx, args.out)
        print(f"check symbol generator written to {args.out}")
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    network = load_benchmark(args.name, table=args.table)
    write_blif(network, args.out)
    print(f"wrote {args.out}: {len(network.inputs)} inputs, "
          f"{network.num_nodes} nodes, {len(network.outputs)} outputs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Approximate logic circuits for low-overhead CED "
                    "(DATE 2008 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe a BLIF circuit")
    p_info.add_argument("--blif", required=True)
    p_info.set_defaults(func=cmd_info)

    p_synth = sub.add_parser(
        "synth", help="synthesize an approximate logic circuit")
    p_synth.add_argument("--blif", required=True)
    p_synth.add_argument("--out", required=True,
                         help="output BLIF for the approximation")
    p_synth.add_argument("--direction", choices=("auto", "0", "1"),
                         default="auto")
    p_synth.add_argument("--words", type=int, default=4,
                         help="64-vector words for reliability analysis")
    _add_config_flags(p_synth)
    p_synth.set_defaults(func=cmd_synth)

    p_ced = sub.add_parser("ced", help="run the full CED flow")
    p_ced.add_argument("--blif", required=True)
    p_ced.add_argument("--out", help="also write the approximation BLIF")
    p_ced.add_argument("--direction", choices=("auto", "0", "1"),
                       default="auto")
    p_ced.add_argument("--share-logic", action="store_true")
    p_ced.add_argument("--words", type=int, default=4)
    _add_config_flags(p_ced)
    p_ced.set_defaults(func=cmd_ced)

    p_gen = sub.add_parser("gen", help="export a suite benchmark")
    p_gen.add_argument("--name", required=True,
                       help="benchmark name (cmb, cordic, term1, ...)")
    p_gen.add_argument("--table", type=int, default=2, choices=(1, 2))
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=cmd_gen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
