"""Command-line interface: the flow on BLIF files.

Subcommands:

* ``info``  — parse a BLIF file and print structure/statistics;
* ``synth`` — synthesize an approximate logic circuit and write it as
  BLIF (directions from reliability analysis or forced);
* ``ced``   — run the full CED flow and print the evaluation report
  (``--json`` for a machine-readable record);
* ``lint``  — static verification: structural lint of a circuit, or
  (with ``--flow``) the full rule set over a CED flow run, emitting
  per-PO implication certificates; nonzero exit on error diagnostics;
  ``--sarif`` exports SARIF 2.1.0 and ``--baseline`` suppresses
  findings already present in a committed SARIF log;
* ``analyze`` — run the repro.analyze dataflow analyses (constants,
  unateness, probability intervals, structure, observability) over a
  circuit and print the summary, cached in ``.lab_cache/analyze/``;
* ``gen``   — export a suite benchmark (MCNC stand-in) as BLIF;
* ``sweep`` — drive a (circuit x config) grid of CED flows through
  ``repro.lab``: parallel workers on a pluggable execution backend
  (``local``/``tcp``/``workqueue``), content-addressed caching (killed
  runs resume), and a structured run manifest;
* ``search`` — budget-governed, resumable evolutionary search over
  checker candidates (``repro.search``), one lab grid per generation;
* ``cache`` — stats/prune for the cross-process implication proof
  cache (``.lab_cache/proofs/``);
* ``serve`` — run the CED-synthesis service (async HTTP front end over
  sharded warm workers; see DESIGN.md §14) until SIGTERM drains it.

Usage: ``python -m repro.cli <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.approx import (ApproxConfig, ConfigError, engine_names,
                          approximation_percentages,
                          synthesize_approximation)
from repro.bench import load_benchmark
from repro.ced import run_ced_flow
from repro.guard import Budget, BudgetExceeded
from repro.network import read_blif, write_blif
from repro.reliability import analyze_reliability
from repro.synth import quick_map

#: Exit status of a rejected configuration (unknown engine, malformed
#: error spec, ...); the ConfigError document is printed as JSON.
EXIT_CONFIG_ERROR = 2

#: Exit status of a run that exceeded its resource budget in a way the
#: degradation ladder could not absorb (e.g. --budget-deadline 0).
EXIT_BUDGET_EXCEEDED = 3


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cube-drop-threshold", type=float,
                        default=ApproxConfig.cube_drop_threshold,
                        help="stage-1 cube significance cutoff")
    parser.add_argument("--dc-threshold", type=float,
                        default=ApproxConfig.dc_threshold,
                        help="relative observability below which a "
                             "fanin is requested DC")
    parser.add_argument("--check", choices=("auto", "bdd", "sat", "sim"),
                        default="auto", help="correctness check backend")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--engine", default="cube", metavar="NAME",
                        help="synthesis engine (registered: "
                             f"{', '.join(engine_names())}; "
                             "default: cube)")
    parser.add_argument("--error-metric", default=None,
                        metavar="METRIC",
                        help="error-constrained synthesis metric "
                             "(er, med, wce); requires --error-bound "
                             "and an error-aware engine such as resub")
    parser.add_argument("--error-bound", type=float, default=None,
                        metavar="BOUND",
                        help="upper bound the measured metric must "
                             "respect (er: a rate in [0, 1]; med/wce: "
                             "a magnitude)")
    parser.add_argument("--error-exact-threshold", type=int,
                        default=None, metavar="N",
                        help="input count up to which the error is "
                             "evaluated by exhaustive simulation "
                             "(default: 12)")


def _config_from(args: argparse.Namespace) -> ApproxConfig:
    error = None
    if args.error_metric is not None or args.error_bound is not None \
            or args.error_exact_threshold is not None:
        error = {"metric": args.error_metric or "",
                 "bound": args.error_bound
                 if args.error_bound is not None else -1.0}
        if args.error_exact_threshold is not None:
            error["exact_threshold"] = args.error_exact_threshold
    return ApproxConfig(cube_drop_threshold=args.cube_drop_threshold,
                        dc_threshold=args.dc_threshold,
                        check=args.check, seed=args.seed,
                        engine=args.engine, error=error)


def _directions_for(network, args) -> dict[str, int]:
    if args.direction in ("0", "1"):
        return {po: int(args.direction) for po in network.outputs}
    report = analyze_reliability(quick_map(network), n_words=args.words,
                                 seed=args.seed)
    return report.approximations


def cmd_info(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    mapped = quick_map(network)
    levels = network.depth()
    print(f"model    : {network.name}")
    print(f"inputs   : {len(network.inputs)}")
    print(f"outputs  : {len(network.outputs)}")
    print(f"nodes    : {network.num_nodes}")
    print(f"literals : {network.total_literals()}")
    print(f"depth    : {levels}")
    print(f"mapped   : {mapped.gate_count} gates "
          f"(lib {mapped.library.name}), delay {mapped.delay():.2f}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    directions = _directions_for(network, args)
    result = synthesize_approximation(network, directions,
                                      _config_from(args))
    pct = approximation_percentages(network, result.approx, directions)
    write_blif(result.approx, args.out)
    print(f"wrote {args.out}")
    print(f"correct       : {result.all_correct} "
          f"({result.check_method}-checked)")
    print(f"nodes         : {network.num_nodes} -> "
          f"{result.approx.num_nodes}")
    for po in network.outputs:
        direction = directions[po]
        print(f"  {po}: {direction}-approximation, "
              f"{pct[po]:.1f}% approximation percentage")
    return 0 if result.all_correct else 1


def _budget_from(args: argparse.Namespace) -> Budget | None:
    values = (args.budget_deadline, args.budget_bdd_nodes,
              args.budget_sat_conflicts, args.budget_repair_rounds)
    if all(v is None for v in values):
        return None
    return Budget(deadline_s=args.budget_deadline,
                  bdd_node_cap=args.budget_bdd_nodes,
                  sat_conflict_cap=args.budget_sat_conflicts,
                  repair_round_cap=args.budget_repair_rounds)


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resource governance",
        "cooperative budget caps; exceeding one degrades the check "
        "down the ladder (BDD -> SAT -> conformance) and records a "
        "budget_report instead of failing")
    group.add_argument("--budget-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline (0 fails fast with "
                            f"exit status {EXIT_BUDGET_EXCEEDED})")
    group.add_argument("--budget-bdd-nodes", type=int, default=None,
                       metavar="N", help="BDD node cap")
    group.add_argument("--budget-sat-conflicts", type=int, default=None,
                       metavar="N", help="SAT conflict cap")
    group.add_argument("--budget-repair-rounds", type=int, default=None,
                       metavar="N", help="repair iteration cap")
    group.add_argument("--chaos", default=None, metavar="KINDS",
                       help="comma-separated deterministic fault "
                            "injections (bdd-overflow, sat-exhausted) "
                            "for testing the ladder")


def cmd_ced(args: argparse.Namespace) -> int:
    network = read_blif(args.blif)
    directions = None
    if args.direction in ("0", "1"):
        directions = {po: int(args.direction)
                      for po in network.outputs}
    try:
        flow = run_ced_flow(network, config=_config_from(args),
                            share_logic=args.share_logic,
                            reliability_words=args.words,
                            coverage_words=args.words,
                            directions=directions, seed=args.seed,
                            checkpoint_dir=args.checkpoint_dir,
                            proof_cache_dir=args.proof_cache_dir,
                            budget=_budget_from(args),
                            chaos=args.chaos or ())
    except BudgetExceeded as exc:
        print(json.dumps(exc.to_dict(), indent=2, sort_keys=True),
              file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    if args.json:
        print(json.dumps(flow.to_dict(), indent=2, sort_keys=True))
        if args.out:
            write_blif(flow.approx_result.approx, args.out)
        return 0
    summary = flow.summary()
    print(f"circuit               : {network.name} "
          f"({int(summary['gates'])} mapped gates)")
    print(f"engine                : {flow.approx_result.engine}")
    report = flow.approx_result.error_report
    if report is not None:
        print(f"error                 : {report['metric']} = "
              f"{report['value']:.6g} <= {report['bound']:g} "
              f"({report['method']}, "
              f"{'within' if report['within'] else 'EXCEEDED'})")
    print(f"area overhead         : {summary['area_overhead_pct']:.1f}%")
    print(f"power overhead        : "
          f"{summary['power_overhead_pct']:.1f}%")
    print(f"approximation         : "
          f"{summary['approximation_pct']:.1f}%")
    print(f"max CED coverage      : "
          f"{summary['max_ced_coverage_pct']:.1f}%")
    print(f"achieved CED coverage : "
          f"{summary['ced_coverage_pct']:.1f}%")
    print(f"approx delay change   : "
          f"{summary['delay_change_pct']:+.1f}%")
    if args.share_logic:
        print(f"shared gates          : "
              f"{int(summary['shared_gates'])}")
    if flow.budget_report is not None:
        report = flow.budget_report
        ladder = " -> ".join(f"{r['engine']}:{r['outcome']}"
                             for r in report["ladder"]) or "(none)"
        print(f"budget                : engine={report['engine']} "
              f"degraded={report['degraded']} ladder={ladder}")
    if args.trace and flow.trace is not None:
        print()
        print("pass          status    time     cache (hits/misses)")
        for rec in flow.trace.passes:
            kinds = " ".join(
                f"{kind}={c.get('hits', 0)}/{c.get('misses', 0)}"
                for kind, c in sorted(rec.cache.items()))
            print(f"{rec.name:13} {rec.status:8} "
                  f"{rec.wall_time_s:6.2f}s  {kinds}")
        print(f"{'total':13} {'':8} "
              f"{flow.trace.total_wall_time_s:6.2f}s")
    if args.out:
        write_blif(flow.approx_result.approx, args.out)
        print(f"check symbol generator written to {args.out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (diagnostic_fingerprint, lint_flow,
                            lint_network, load_baseline, write_sarif)

    if args.blif:
        network = read_blif(args.blif)
        name = args.blif
    else:
        from repro.lab.tasks import load_circuit
        network = load_circuit(args.circuit, args.table)
        name = args.circuit
    if args.flow:
        flow = run_ced_flow(network, config=_config_from(args),
                            reliability_words=args.words,
                            coverage_words=args.words,
                            power_words=args.words, seed=args.seed)
        report = lint_flow(flow, certificate_dir=args.certificates,
                           circuit=name)
    else:
        report = lint_network(network, circuit=name)
        if args.certificates:
            print("lint: --certificates needs --flow (certificates "
                  "attest per-PO implications)", file=sys.stderr)
            return 2
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"lint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
    if args.sarif:
        try:
            write_sarif(report, args.sarif, baseline=baseline)
        except OSError as exc:
            print(f"lint: cannot write SARIF log: {exc}",
                  file=sys.stderr)
            return 2
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    diagnostics = report.diagnostics
    if baseline is not None:
        # Previously-baselined findings don't gate the run; only new
        # ones do (matched by stable fingerprint, not position).
        diagnostics = [d for d in diagnostics
                       if diagnostic_fingerprint(d) not in baseline]
        suppressed = len(report.diagnostics) - len(diagnostics)
        if suppressed:
            print(f"{suppressed} finding(s) suppressed by baseline",
                  file=sys.stderr)
    from repro.lint import Severity
    errors = sum(1 for d in diagnostics
                 if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics
                   if d.severity is Severity.WARNING)
    failed = errors > 0 or (args.strict and warnings > 0)
    return 1 if failed else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the dataflow analyses over one circuit."""
    from repro.analyze import (analyze_network, load_cached_summary,
                               store_summary)

    if args.blif:
        network = read_blif(args.blif)
    else:
        from repro.lab.tasks import load_circuit
        network = load_circuit(args.circuit, args.table)
    doc = None
    cached = False
    if args.cache_dir:
        doc = load_cached_summary(args.cache_dir, network)
        cached = doc is not None
    if doc is None:
        doc = analyze_network(network)
        if args.cache_dir:
            store_summary(args.cache_dir, network, doc)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"circuit   : {doc['circuit']}  "
          f"({doc['inputs']} PIs, {doc['nodes']} nodes, "
          f"{doc['outputs']} POs){'  [cached]' if cached else ''}")
    print(f"constants : {doc['constants']['count']}")
    print(f"dead cones: {len(doc['dead_cones'])}")
    print(f"SDC cubes : {doc['sdc_cubes']['cubes']} "
          f"(in {doc['sdc_cubes']['nodes']} nodes)")
    print(f"dup cones : {len(doc['structural_duplicates'])} group(s)")
    print(f"unread    : {doc['unread_fanins']['positions']} fanin "
          f"position(s) in {doc['unread_fanins']['nodes']} node(s)")
    probs = doc["probability_intervals"]
    print(f"prob ivals: {probs['exact']}/{probs['signals']} exact, "
          f"mean width {probs['mean_width']:.4f}")
    unate = doc["unateness"]
    print(f"unateness : +{unate['pos_unate_po_inputs']} "
          f"-{unate['neg_unate_po_inputs']} "
          f"binate {unate['binate_po_inputs']} (PO/PI pairs)")
    for cost in doc["fixpoint"]:
        print(f"  fixpoint {cost['analysis']:<13} "
              f"{cost['iterations']:>5} iters  "
              f"{cost['seconds']*1000:8.2f} ms")
    return 0


def _parse_floats(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (circuit x config) grid through the lab subsystem."""
    from repro.lab import ArtifactStore, Job, JobGraph, LabRunner, \
        derive_seed
    from repro.lab.tasks import ced_flow_task

    circuits = [c.strip() for c in args.circuits.split(",")
                if c.strip()]
    if not circuits:
        raise SystemExit("sweep: --circuits must name at least one "
                         "circuit")
    dc_list = _parse_floats(args.dc_thresholds)
    drop_list = _parse_floats(args.drop_thresholds)
    single_config = len(dc_list) == 1 and len(drop_list) == 1

    graph = JobGraph(root_seed=args.seed)
    # With the artifact cache on, flows also checkpoint per pass into
    # the same store, so a killed sweep resumes mid-pipeline, and
    # implication proofs are shared across all worker processes.
    checkpoint_dir = None if args.no_cache else args.cache_dir
    proof_cache_dir = None if args.no_cache \
        else f"{args.cache_dir}/proofs"
    for circuit in circuits:
        for dc in dc_list:
            for drop in drop_list:
                name = circuit if single_config else \
                    f"{circuit}/dc{dc:g}/drop{drop:g}"
                seed = derive_seed(args.seed, name) \
                    if args.per_job_seeds else args.seed
                graph.add(Job(
                    name, ced_flow_task,
                    params={
                        "circuit": circuit,
                        "table": args.table,
                        "words": args.words,
                        "seed": seed,
                        "share_logic": bool(args.share_logic),
                        "config": {"dc_threshold": dc,
                                   "cube_drop_threshold": drop,
                                   "seed": seed},
                        "lint_level": "warn" if args.lint else "off",
                        "checkpoint_dir": checkpoint_dir,
                        "proof_cache_dir": proof_cache_dir,
                    },
                    timeout=args.timeout, retries=args.retries))

    cache = None if args.no_cache else ArtifactStore(args.cache_dir)
    quiet = args.json or args.quiet
    runner = LabRunner(
        workers=args.workers, backend=args.backend, cache=cache,
        results_dir=args.results_dir,
        log=None if quiet else (lambda line: print(
            line, file=sys.stderr, flush=True)),
        manifest_extra={"command": "sweep", "circuits": circuits,
                        "argv": list(sys.argv[1:])})
    run = runner.run(graph, run_id=args.run_id)

    if args.json:
        doc = {
            "run_id": run.run_id,
            "manifest": str(run.manifest_path),
            "wall_time_s": run.wall_time_s,
            "counts": run.counts(),
            "jobs": {
                name: {
                    "status": result.status,
                    "summary": (result.value or {}).get("summary")
                    if result.ok else None,
                    "error": result.error,
                }
                for name, result in sorted(run.results.items())
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        header = (f"{'job':<24} {'gates':>6} {'area%':>7} "
                  f"{'power%':>7} {'approx%':>8} {'cov%':>6} "
                  f"{'max%':>6}  status")
        print(header)
        print("-" * len(header))
        for name, result in sorted(run.results.items()):
            if result.ok:
                s = result.value["summary"]
                print(f"{name:<24} {int(s['gates']):>6} "
                      f"{s['area_overhead_pct']:>7.1f} "
                      f"{s['power_overhead_pct']:>7.1f} "
                      f"{s['approximation_pct']:>8.1f} "
                      f"{s['ced_coverage_pct']:>6.1f} "
                      f"{s['max_ced_coverage_pct']:>6.1f}  "
                      f"{result.status}")
            else:
                reason = (result.error or "").splitlines()[0][:40] \
                    if result.error else ""
                print(f"{name:<24} {'-':>6} {'-':>7} {'-':>7} "
                      f"{'-':>8} {'-':>6} {'-':>6}  "
                      f"{result.status} {reason}")
        print(f"\nmanifest: {run.manifest_path}")
    return 0 if run.ok else 1


def cmd_search(args: argparse.Namespace) -> int:
    """Evolutionary search over checker candidates via repro.search."""
    from repro.search import SearchConfig, run_search

    config = SearchConfig(
        circuit=args.circuit, table=args.table, words=args.words,
        seed=args.seed, generations=args.generations,
        population=args.population, offspring=args.offspring,
        moves_per_child=args.moves, area_slack=args.area_slack,
        budget_s=args.budget, backend=args.backend,
        workers=args.workers, state_dir=args.state_dir,
        cache_dir=None if args.no_cache else args.cache_dir,
        results_dir=args.results_dir)
    quiet = args.json or args.quiet
    result = run_search(config, log=None if quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)))
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(result.best.blif)
    if args.json:
        doc = result.summary()
        doc["history"] = result.history
        doc["state_path"] = str(result.state_path)
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        base, best = result.baseline, result.best
        print(f"circuit    : {config.circuit}")
        print(f"generations: {result.generations_run}"
              f"/{config.generations}")
        print(f"baseline   : coverage={base.coverage:.2f}% "
              f"area={base.area}")
        print(f"best       : coverage={best.coverage:.2f}% "
              f"area={best.area} ({best.origin})")
        print(f"improved   : {result.improved}")
        if args.out:
            print(f"best checker written to {args.out}")
    return 0


def _parse_size(text: str) -> int:
    """'512', '64K', '10M', '1G' -> bytes."""
    text = text.strip().upper()
    scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}.get(text[-1:])
    try:
        if scale is not None:
            return int(float(text[:-1]) * scale)
        return int(text)
    except ValueError:
        raise SystemExit(f"cache: bad size {text!r} "
                         "(use bytes or a K/M/G suffix)")


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune the cross-process proof cache."""
    from repro.lab import ProofCache

    cache = ProofCache(args.dir)
    if args.cache_command == "prune":
        if args.max_size is None and not args.stale:
            raise SystemExit("cache prune: give --max-size and/or "
                             "--stale")
        doc = {"root": str(cache.root)}
        if args.stale:
            doc.update(cache.prune_stale())
        if args.max_size is not None:
            doc.update(cache.prune(_parse_size(args.max_size)))
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            parts = []
            if "removed_stale" in doc:
                parts.append(f"{doc['removed_stale']} stale entr"
                             f"{'y' if doc['removed_stale'] == 1 else 'ies'}"
                             " removed")
            if "removed" in doc:
                parts.append(f"{doc['removed']} evicted for size")
            print(f"pruned: {', '.join(parts)}; "
                  f"{doc['kept_entries']} kept")
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(f"proof cache {stats['root']}: {stats['entries']} "
              f"entries, {stats['bytes']} bytes")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the CED-synthesis service until a signal drains it."""
    import asyncio
    import signal as signal_mod

    from repro.serve import CedService, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        backend=args.backend, state_dir=args.state_dir,
        max_queue=args.max_queue, tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        drain_timeout_s=args.drain_timeout,
        default_words=args.words, default_seed=args.seed,
        budget_deadline_s=args.budget_deadline,
        budget_bdd_nodes=args.budget_bdd_nodes,
        budget_sat_conflicts=args.budget_sat_conflicts,
        budget_repair_rounds=args.budget_repair_rounds)
    service = CedService(config, log=lambda line: print(
        line, file=sys.stderr, flush=True))

    async def main() -> None:
        await service.start()
        loop = asyncio.get_running_loop()
        for sig in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                loop.add_signal_handler(sig, service.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass               # non-main thread or odd platform
        await service.stopped.wait()

    asyncio.run(main())
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    network = load_benchmark(args.name, table=args.table)
    write_blif(network, args.out)
    print(f"wrote {args.out}: {len(network.inputs)} inputs, "
          f"{network.num_nodes} nodes, {len(network.outputs)} outputs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Approximate logic circuits for low-overhead CED "
                    "(DATE 2008 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe a BLIF circuit")
    p_info.add_argument("--blif", required=True)
    p_info.set_defaults(func=cmd_info)

    p_synth = sub.add_parser(
        "synth", help="synthesize an approximate logic circuit")
    p_synth.add_argument("--blif", required=True)
    p_synth.add_argument("--out", required=True,
                         help="output BLIF for the approximation")
    p_synth.add_argument("--direction", choices=("auto", "0", "1"),
                         default="auto")
    p_synth.add_argument("--words", type=int, default=4,
                         help="64-vector words for reliability analysis")
    _add_config_flags(p_synth)
    p_synth.set_defaults(func=cmd_synth)

    p_ced = sub.add_parser("ced", help="run the full CED flow")
    p_ced.add_argument("--blif", required=True)
    p_ced.add_argument("--out", help="also write the approximation BLIF")
    p_ced.add_argument("--direction", choices=("auto", "0", "1"),
                       default="auto")
    p_ced.add_argument("--share-logic", action="store_true")
    p_ced.add_argument("--words", type=int, default=4)
    p_ced.add_argument("--trace", action="store_true",
                       help="print per-pass wall times and cache "
                            "hit/miss counters after the report")
    p_ced.add_argument("--checkpoint-dir", default=None,
                       help="persist per-pass checkpoints to this "
                            "content-addressed store so an identical "
                            "re-run resumes mid-pipeline")
    p_ced.add_argument("--proof-cache-dir", default=None,
                       help="serve/store per-PO implication proofs in "
                            "this cross-process cache (keyed by cone "
                            "fingerprint; results stay bit-identical)")
    p_ced.add_argument("--json", action="store_true",
                       help="emit the machine-readable flow record "
                            "instead of the text report")
    _add_config_flags(p_ced)
    _add_budget_flags(p_ced)
    p_ced.set_defaults(func=cmd_ced)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a (circuit x config) grid via repro.lab")
    p_sweep.add_argument(
        "--circuits", required=True,
        help="comma-separated suite names (cmb, cordic, ..., or tiny)")
    p_sweep.add_argument("--table", type=int, default=2,
                         choices=(1, 2))
    p_sweep.add_argument("--words", type=int, default=2,
                         help="64-vector words for the fault campaigns")
    p_sweep.add_argument("--dc-thresholds", default="0.25",
                         help="comma-separated dc_threshold values")
    p_sweep.add_argument("--drop-thresholds", default="0.02",
                         help="comma-separated cube_drop_threshold "
                              "values")
    p_sweep.add_argument("--share-logic", action="store_true")
    p_sweep.add_argument(
        "--lint", action="store_true",
        help="run the static verifier on every flow and record its "
             "diagnostics in the run manifest")
    p_sweep.add_argument("--seed", type=int, default=2008,
                         help="root seed of the run")
    p_sweep.add_argument(
        "--per-job-seeds", action="store_true",
        help="derive a deterministic per-job seed from the root seed "
             "instead of reusing it verbatim")
    p_sweep.add_argument(
        "--workers", default=None,
        help="worker count, or 'serial' (default: REPRO_LAB_WORKERS "
             "env, else cpu_count()-1)")
    p_sweep.add_argument(
        "--backend", default=None,
        help="execution backend: local, tcp, workqueue (default: "
             "REPRO_LAB_BACKEND env, else local)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    p_sweep.add_argument("--retries", type=int, default=0,
                         help="retry budget per job")
    p_sweep.add_argument("--run-id", default=None,
                         help="manifest directory name (default: "
                              "timestamped)")
    p_sweep.add_argument("--results-dir", default="results",
                         help="manifests land under "
                              "<results-dir>/runs/<run-id>/")
    p_sweep.add_argument("--cache-dir", default=".lab_cache")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache")
    p_sweep.add_argument("--json", action="store_true",
                         help="emit machine-readable results")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-job progress lines")
    p_sweep.set_defaults(func=cmd_sweep)

    p_search = sub.add_parser(
        "search",
        help="evolutionary search over checker candidates "
             "(one repro.lab grid per generation; resumable)")
    p_search.add_argument(
        "--circuit", required=True,
        help="suite circuit to search on (cmb, x1, ..., or tiny)")
    p_search.add_argument("--table", type=int, default=2,
                          choices=(1, 2))
    p_search.add_argument("--words", type=int, default=2,
                          help="64-vector words for fault campaigns")
    p_search.add_argument("--seed", type=int, default=2008,
                          help="root seed (drives mutation and "
                               "evaluation determinism)")
    p_search.add_argument("--generations", type=int, default=4)
    p_search.add_argument("--population", type=int, default=4,
                          help="mu: survivors per generation")
    p_search.add_argument("--offspring", type=int, default=8,
                          help="lambda: mutants per generation")
    p_search.add_argument("--moves", type=int, default=1,
                          help="mutation moves per offspring")
    p_search.add_argument("--area-slack", type=int, default=0,
                          help="gates over baseline area a candidate "
                               "may use and still qualify")
    p_search.add_argument("--budget", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget; the search stops "
                               "after the generation that exceeds it "
                               "(state is saved; rerun resumes)")
    p_search.add_argument("--backend", default=None,
                          help="execution backend: local, tcp, "
                               "workqueue (default: REPRO_LAB_BACKEND "
                               "env, else local)")
    p_search.add_argument("--workers", default=None,
                          help="worker count, or 'serial'")
    p_search.add_argument("--state-dir", default=".search_state",
                          help="per-generation search state (resume)")
    p_search.add_argument("--cache-dir", default=".lab_cache")
    p_search.add_argument("--no-cache", action="store_true")
    p_search.add_argument("--results-dir", default="results")
    p_search.add_argument("--out", default=None,
                          help="write the best checker BLIF here")
    p_search.add_argument("--json", action="store_true",
                          help="machine-readable result")
    p_search.add_argument("--quiet", action="store_true",
                          help="suppress progress lines")
    p_search.set_defaults(func=cmd_search)

    p_lint = sub.add_parser(
        "lint", help="static verification of a circuit or CED flow")
    where = p_lint.add_mutually_exclusive_group(required=True)
    where.add_argument("--blif", help="lint a BLIF file")
    where.add_argument("--circuit",
                       help="lint a suite benchmark (cmb, ..., tiny)")
    p_lint.add_argument("--table", type=int, default=2, choices=(1, 2))
    p_lint.add_argument(
        "--flow", action="store_true",
        help="run the CED flow and apply the full rule set "
             "(approximation semantics, per-PO implication proofs, "
             "CED assembly); default is structural lint only")
    p_lint.add_argument("--words", type=int, default=1,
                        help="64-vector words for the flow run")
    p_lint.add_argument("--certificates", metavar="DIR",
                        help="write implication certificates here "
                             "(needs --flow)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as failures too")
    p_lint.add_argument("--sarif", metavar="PATH",
                        help="also write the report as SARIF 2.1.0 "
                             "with stable result fingerprints")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="SARIF log of known findings; matching "
                             "fingerprints are marked unchanged and "
                             "do not gate the exit status")
    _add_config_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="dataflow analyses (constants, unateness, probability "
             "intervals, structure, observability) over a circuit")
    a_where = p_analyze.add_mutually_exclusive_group(required=True)
    a_where.add_argument("--blif", help="analyze a BLIF file")
    a_where.add_argument("--circuit",
                         help="analyze a suite benchmark "
                              "(cmb, ..., tiny)")
    p_analyze.add_argument("--table", type=int, default=2,
                           choices=(1, 2))
    p_analyze.add_argument("--cache-dir", default=".lab_cache/analyze",
                           help="cross-process summary cache root "
                                "(empty string disables caching)")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the raw summary document")
    p_analyze.set_defaults(func=cmd_analyze)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the proof cache")
    p_cache.add_argument("--dir", default=".lab_cache/proofs",
                         help="proof cache root "
                              "(default: .lab_cache/proofs)")
    p_cache.add_argument("--json", action="store_true",
                         help="machine-readable output")
    cache_sub = p_cache.add_subparsers(dest="cache_command",
                                       required=True)
    p_stats = cache_sub.add_parser("stats",
                                   help="entry count and on-disk size")
    p_prune = cache_sub.add_parser(
        "prune", help="evict stale entries and/or oldest entries "
                      "down to a size budget")
    p_prune.add_argument("--max-size", default=None,
                         help="size budget in bytes (K/M/G suffixes "
                              "accepted), e.g. 64M")
    p_prune.add_argument("--stale", action="store_true",
                         help="sweep entries written under an older "
                              "proof schema or with a bad digest "
                              "(e.g. after a cache-key version bump)")
    for leaf in (p_stats, p_prune):
        # Accepted after the subcommand too (``cache stats --json``).
        # SUPPRESS keeps the leaf's default from clobbering a --json
        # given before the subcommand.
        leaf.add_argument("--json", action="store_true",
                          default=argparse.SUPPRESS,
                          help="machine-readable output")
    p_cache.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the CED-synthesis service (async HTTP over sharded "
             "warm workers)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="sharded warm worker count")
    p_serve.add_argument("--backend", choices=("process", "thread"),
                         default="process",
                         help="worker isolation (process default; "
                              "falls back to thread where "
                              "multiprocessing is unavailable)")
    p_serve.add_argument("--state-dir", default=".serve_cache",
                         help="warm checkpoint + proof cache root")
    p_serve.add_argument("--max-queue", type=int, default=16,
                         help="bound on admitted-but-not-running jobs "
                              "(429 backpressure beyond it)")
    p_serve.add_argument("--tenant-rate", type=float, default=8.0,
                         help="requests/second replenished per tenant")
    p_serve.add_argument("--tenant-burst", type=float, default=16.0,
                         help="per-tenant token-bucket burst")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         help="seconds to let queued+running jobs "
                              "finish on SIGTERM before cancelling "
                              "the rest of the queue")
    p_serve.add_argument("--words", type=int, default=2,
                         help="default 64-vector words per request")
    p_serve.add_argument("--seed", type=int, default=2008,
                         help="default seed per request")
    # For serve these act as rails: the default when a request names
    # no budget, and the ceiling when it does.
    _add_budget_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_gen = sub.add_parser("gen", help="export a suite benchmark")
    p_gen.add_argument("--name", required=True,
                       help="benchmark name (cmb, cordic, term1, ...)")
    p_gen.add_argument("--table", type=int, default=2, choices=(1, 2))
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=cmd_gen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(json.dumps(exc.to_dict(), indent=2, sort_keys=True),
              file=sys.stderr)
        return EXIT_CONFIG_ERROR


if __name__ == "__main__":
    sys.exit(main())
