"""Reliability analysis: error directions, observabilities (ref [14])."""

from .analysis import (ReliabilityReport, analytic_directions,
                       analyze_reliability, max_ced_coverage)
from .observability import error_contributions, global_observabilities

__all__ = [
    "ReliabilityReport", "analytic_directions", "analyze_reliability",
    "error_contributions", "global_observabilities", "max_ced_coverage",
]
