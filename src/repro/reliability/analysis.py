"""Reliability analysis: per-output error-direction profiles.

Plays the role of reference [14] (Choudhury & Mohanram, DATE'07) in the
flow: before synthesizing the approximate logic circuit, a quick mapped
netlist is analyzed to find, for every primary output, whether 0->1 or
1->0 errors dominate.  That decides the approximation direction (paper
Sec 3): a 0-approximation detects 0->1 errors, a 1-approximation detects
1->0 errors.

Two estimators are provided: the Monte Carlo fault-injection profile
(primary, matching the paper's evaluation fault model) and a cheap
analytic estimate based on output signal probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import (OutputErrorStats, batched, fault_list,
                       get_simulator, popcount, run_campaign,
                       signal_probabilities)


@dataclass
class ReliabilityReport:
    """Error-direction profile and derived CED decisions."""

    per_output: dict[str, OutputErrorStats]
    directions: dict[str, str]        # po -> "0->1" or "1->0" (dominant)
    approximations: dict[str, int]    # po -> 0 (0-approx) or 1 (1-approx)
    max_ced_coverage: float           # best coverage any direction-
                                      # protecting scheme can reach
    runs: int = 0
    error_runs: int = 0

    def skew(self, po: str) -> float:
        return self.per_output[po].skew


def analyze_reliability(circuit, n_words: int = 8, seed: int = 2008,
                        faults=None,
                        vector_mode: str = "shared",
                        ctx=None) -> ReliabilityReport:
    """Monte Carlo reliability analysis of a (mapped) circuit.

    Injects every single stuck-at fault against random vectors, tallies
    output error directions, picks the dominant direction per output,
    and computes the maximum CED coverage achievable by protecting only
    the dominant direction at every output (Table 1's "Max." column).
    ``vector_mode`` selects the campaign sampling scheme (see
    :func:`repro.sim.run_campaign`).
    """
    report = run_campaign(circuit, n_words=n_words, seed=seed,
                          faults=faults, vector_mode=vector_mode)
    directions = {po: stats.dominant_direction
                  for po, stats in report.per_output.items()}
    approximations = {po: 0 if direction == "0->1" else 1
                      for po, direction in directions.items()}
    max_cov = max_ced_coverage(circuit, approximations, n_words=n_words,
                               seed=seed + 1, faults=faults,
                               vector_mode=vector_mode, ctx=ctx)
    return ReliabilityReport(
        per_output=report.per_output,
        directions=directions,
        approximations=approximations,
        max_ced_coverage=max_cov,
        runs=report.runs,
        error_runs=report.error_runs)


def max_ced_coverage(circuit, approximations: dict[str, int],
                     n_words: int = 8, seed: int = 2008,
                     faults=None, vector_mode: str = "shared",
                     ctx=None) -> float:
    """Coverage upper bound for direction-protecting CED.

    A run with an erroneous output is *detectable* when at least one
    erroneous output flipped in its protected direction (0->1 under a
    0-approximation, 1->0 under a 1-approximation); with a perfect
    (100%) approximation those are exactly the detected runs.
    """
    sim = (ctx.simulator if ctx is not None
           else get_simulator)(circuit)
    if faults is None:
        faults = fault_list(circuit)
    rng = np.random.default_rng(seed)
    error_runs = 0
    detectable_runs = 0
    if vector_mode == "shared":
        golden = sim.run(sim.random_inputs(rng, n_words))
        golden_out = sim.outputs_of(golden)
        # Per-output direction masks: True = protect 0->1 errors.
        protect_up = np.array(
            [approximations.get(po, 0) == 0 for po in sim.output_names],
            dtype=bool)
        for batch in batched(faults, sim):
            diff = sim.run_stuck_batch(golden, batch)[
                sim.output_indices] ^ golden_out[:, None, :]
            lifted = golden_out[:, None, :]
            detectable = np.where(protect_up[:, None, None],
                                  diff & ~lifted, diff & lifted)
            any_error = np.bitwise_or.reduce(diff, axis=0)
            any_detectable = np.bitwise_or.reduce(detectable, axis=0)
            error_runs += popcount(any_error)
            detectable_runs += popcount(any_detectable & any_error)
    else:
        for fault in faults:
            pi_words = sim.random_inputs(rng, n_words)
            golden = sim.run(pi_words)
            overlay = sim.run_fault(golden, fault.signal, fault.stuck)
            golden_out = sim.outputs_of(golden)
            faulty_out = sim.faulty_outputs(golden, overlay)
            diff = golden_out ^ faulty_out
            if not diff.any():
                continue
            n_words_here = golden.shape[1]
            any_error = np.zeros(n_words_here, dtype=np.uint64)
            any_detectable = np.zeros(n_words_here, dtype=np.uint64)
            for po, g_row, d_row in zip(sim.output_names, golden_out,
                                        diff):
                any_error |= d_row
                if approximations.get(po, 0) == 0:
                    any_detectable |= d_row & ~g_row   # 0->1 errors
                else:
                    any_detectable |= d_row & g_row    # 1->0 errors
            error_runs += popcount(any_error)
            detectable_runs += popcount(any_detectable & any_error)
    if error_runs == 0:
        return 0.0
    return detectable_runs / error_runs


def analytic_directions(network) -> dict[str, int]:
    """Cheap analytic approximation-direction guess.

    When an output is 1 with probability p, a random error flips a 0 to
    a 1 with probability ~(1-p): outputs that are usually 0 see mostly
    0->1 errors and get a 0-approximation.  This is the zeroth-order
    version of [14]; the Monte Carlo profile is the reference.
    """
    probs = signal_probabilities(network)
    result = {}
    for po in network.outputs:
        result[po] = 0 if probs[po] < 0.5 else 1
    return result
