"""Global observability estimation.

The global observability of a signal is the probability that toggling it
changes some primary output.  It ranks gates by how much a fault at that
gate matters — the criticality measure that drives partial duplication
[10] and provides the analytic reliability view of [14].
"""

from __future__ import annotations

import numpy as np

from repro.sim import WORD_BITS, BitSimulator, popcount


def global_observabilities(circuit, n_words: int = 16,
                           seed: int = 2008,
                           signals: list[str] | None = None
                           ) -> dict[str, float]:
    """Monte Carlo global observability of each signal.

    Returns, for each signal, the fraction of random vectors on which
    inverting the signal changes at least one primary output.
    """
    sim = BitSimulator(circuit)
    rng = np.random.default_rng(seed)
    golden = sim.run(sim.random_inputs(rng, n_words))
    golden_out = sim.outputs_of(golden)
    total = n_words * WORD_BITS
    if signals is None:
        signals = list(sim.signals)
    result: dict[str, float] = {}
    for name in signals:
        overlay = sim.run_toggle(golden, name)
        flipped_out = sim.faulty_outputs(golden, overlay)
        diff = golden_out ^ flipped_out
        any_change = np.zeros(n_words, dtype=np.uint64)
        for row in diff:
            any_change |= row
        result[name] = popcount(any_change) / total
    return result


def error_contributions(circuit, n_words: int = 8,
                        seed: int = 2008) -> dict[str, float]:
    """Per-gate expected error contribution under the stuck-at model.

    For gate g with output probability p and global observability o, a
    random stuck-at fault (sa0 or sa1 equally likely) is excited with
    probability p/2 + (1-p)/2 = 1/2 and, once excited, propagates with
    probability ~o.  We estimate the product directly by simulating both
    stuck values, which also captures excitation/propagation correlation.
    """
    sim = BitSimulator(circuit)
    rng = np.random.default_rng(seed)
    golden = sim.run(sim.random_inputs(rng, n_words))
    golden_out = sim.outputs_of(golden)
    total = n_words * WORD_BITS
    result: dict[str, float] = {}
    for name in sim.signals[sim.num_inputs:]:
        errors = 0
        for stuck in (0, 1):
            overlay = sim.run_fault(golden, name, stuck)
            diff = golden_out ^ sim.faulty_outputs(golden, overlay)
            any_change = np.zeros(n_words, dtype=np.uint64)
            for row in diff:
                any_change |= row
            errors += popcount(any_change)
        result[name] = errors / (2 * total)
    return result
