"""Global observability estimation.

The global observability of a signal is the probability that toggling it
changes some primary output.  It ranks gates by how much a fault at that
gate matters — the criticality measure that drives partial duplication
[10] and provides the analytic reliability view of [14].

Both estimators batch their injections on the compiled simulation tape:
signals are grouped into lanes that share one golden simulation, so the
whole sweep costs a handful of vectorized passes instead of one Python
cone walk per signal.
"""

from __future__ import annotations

import numpy as np

from repro.sim import (DEFAULT_BATCH, WORD_BITS, bit_count,
                       get_simulator)


def global_observabilities(circuit, n_words: int = 16,
                           seed: int = 2008,
                           signals: list[str] | None = None,
                           batch_size: int = DEFAULT_BATCH
                           ) -> dict[str, float]:
    """Monte Carlo global observability of each signal.

    Returns, for each signal, the fraction of random vectors on which
    inverting the signal changes at least one primary output.
    """
    sim = get_simulator(circuit)
    rng = np.random.default_rng(seed)
    golden = sim.run(sim.random_inputs(rng, n_words))
    golden_out = sim.outputs_of(golden)
    total = n_words * WORD_BITS
    if signals is None:
        signals = list(sim.signals)
    ordered = sorted(signals, key=sim.site_level)
    result: dict[str, float] = {}
    for start in range(0, len(ordered), batch_size):
        batch = ordered[start:start + batch_size]
        site_rows = np.fromiter((sim.index[s] for s in batch),
                                dtype=np.intp, count=len(batch))
        scratch = sim.run_forced_batch(golden, site_rows,
                                       ~golden[site_rows])
        diff = scratch[sim.output_indices] ^ golden_out[:, None, :]
        any_change = np.bitwise_or.reduce(diff, axis=0)    # (B, W)
        counts = bit_count(any_change).sum(axis=1, dtype=np.int64)
        for name, count in zip(batch, counts):
            result[name] = int(count) / total
    return result


def error_contributions(circuit, n_words: int = 8,
                        seed: int = 2008,
                        batch_size: int = DEFAULT_BATCH
                        ) -> dict[str, float]:
    """Per-gate expected error contribution under the stuck-at model.

    For gate g with output probability p and global observability o, a
    random stuck-at fault (sa0 or sa1 equally likely) is excited with
    probability p/2 + (1-p)/2 = 1/2 and, once excited, propagates with
    probability ~o.  We estimate the product directly by simulating both
    stuck values, which also captures excitation/propagation correlation.
    """
    sim = get_simulator(circuit)
    rng = np.random.default_rng(seed)
    golden = sim.run(sim.random_inputs(rng, n_words))
    golden_out = sim.outputs_of(golden)
    total = n_words * WORD_BITS
    names = sorted(sim.signals[sim.num_inputs:], key=sim.site_level)
    result: dict[str, float] = {}
    # Two lanes per signal: stuck-at-0 and stuck-at-1.
    pair_batch = max(1, batch_size // 2)
    all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    for start in range(0, len(names), pair_batch):
        batch = names[start:start + pair_batch]
        site_rows = np.fromiter(
            (sim.index[s] for s in batch for _ in (0, 1)),
            dtype=np.intp, count=2 * len(batch))
        forced = np.zeros((2 * len(batch), n_words), dtype=np.uint64)
        forced[1::2] = all_ones
        scratch = sim.run_forced_batch(golden, site_rows, forced)
        diff = scratch[sim.output_indices] ^ golden_out[:, None, :]
        any_change = np.bitwise_or.reduce(diff, axis=0)    # (2B, W)
        counts = bit_count(any_change).sum(axis=1, dtype=np.int64)
        for lane, name in enumerate(batch):
            errors = int(counts[2 * lane] + counts[2 * lane + 1])
            result[name] = errors / (2 * total)
    return result
