"""The technology-independent multi-level Boolean network.

This is the data structure every stage of the paper operates on: a DAG of
named signals where primary inputs are sources, internal nodes carry local
SOP covers over their fanins, and primary outputs name driver signals.
It fills the role of ABC's network object in the original work.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.cubes import Cover

from .node import Node

#: Mutations remembered for cone-scoped cache invalidation.  Once the
#: log overflows, :meth:`Network.changed_signals` answers ``None``
#: (unknown) and callers fall back to a full rebuild.
MUTATION_LOG_CAP = 512


class NetworkError(ValueError):
    """Structural problem in a network (cycles, missing signals, ...)."""


class Network:
    """A combinational Boolean network.

    Signals are identified by name.  A name is either a primary input or
    an internal node; primary outputs reference signals by name.  The
    graph must be acyclic; topological orderings are recomputed on demand
    and cached until the network is mutated.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.nodes: dict[str, Node] = {}
        self._topo_cache: list[str] | None = None
        self._version: int = 0
        #: (version-after-mutation, touched signal names or None) pairs
        #: covering versions (_log_start, _version]; None = global change.
        self._mutation_log: list[tuple[int, frozenset[str] | None]] = []
        self._log_start: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _invalidate(self, touched: Iterable[str] | None = None) -> None:
        """Drop cached derived state after any structural mutation.

        Bumps the monotonic mutation :attr:`version` that derived-state
        caches (compiled simulators, global BDDs, analysis contexts) key
        on, and logs ``touched`` — the signal names whose local function
        or fanin list changed — so cone-scoped caches can invalidate
        only the affected fanout cones.  ``touched=None`` means a global
        change (input/output lists, unknown scope).
        """
        self._topo_cache = None
        self._version += 1
        entry = None if touched is None else frozenset(touched)
        self._mutation_log.append((self._version, entry))
        if len(self._mutation_log) > MUTATION_LOG_CAP:
            dropped_version, _ = self._mutation_log.pop(0)
            self._log_start = dropped_version

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every structural change."""
        return self._version

    def changed_signals(self, since_version: int) -> frozenset[str] | None:
        """Signals touched since ``since_version``, or ``None`` if unknown.

        ``None`` means a global change happened (or the mutation log no
        longer reaches back that far) and every derived artifact must be
        rebuilt.  An empty set means nothing changed.
        """
        if since_version >= self._version:
            return frozenset()
        if since_version < self._log_start:
            return None
        touched: set[str] = set()
        for version, entry in self._mutation_log:
            if version <= since_version:
                continue
            if entry is None:
                return None
            touched.update(entry)
        return frozenset(touched)

    def add_input(self, name: str) -> str:
        if name in self.nodes or name in self.inputs:
            raise NetworkError(f"signal {name!r} already defined")
        self.inputs.append(name)
        self._invalidate()
        return name

    def add_node(self, name: str, fanins: list[str], cover: Cover) -> str:
        if name in self.nodes or name in self.inputs:
            raise NetworkError(f"signal {name!r} already defined")
        for fanin in fanins:
            if fanin not in self.nodes and fanin not in self.inputs:
                raise NetworkError(
                    f"node {name!r}: fanin {fanin!r} not defined yet "
                    "(add nodes in topological order)")
        self.nodes[name] = Node(name, fanins, cover)
        self._invalidate(touched=(name,))
        return name

    def add_const(self, name: str, value: bool) -> str:
        cover = Cover.one(0) if value else Cover.zero(0)
        return self.add_node(name, [], cover)

    def add_output(self, name: str) -> None:
        if name not in self.nodes and name not in self.inputs:
            raise NetworkError(f"output references unknown signal {name!r}")
        self.outputs.append(name)
        # Topological order doesn't depend on the output list, but
        # invalidate anyway so future caches keyed on outputs stay safe.
        self._invalidate()

    def replace_cover(self, name: str, cover: Cover) -> None:
        """Replace a node's local function, keeping its fanin list."""
        node = self.nodes[name]
        if cover.n != len(node.fanins):
            raise NetworkError(
                f"replacement cover for {name!r} has wrong variable count")
        node.cover = cover
        self._invalidate(touched=(name,))

    def replace_node(self, name: str, fanins: list[str],
                     cover: Cover) -> None:
        """Replace a node's fanins and cover (must stay acyclic)."""
        if name not in self.nodes:
            raise NetworkError(f"no node named {name!r}")
        for fanin in fanins:
            if fanin not in self.nodes and fanin not in self.inputs:
                raise NetworkError(f"fanin {fanin!r} not defined")
        old = self.nodes[name]
        self.nodes[name] = Node(name, fanins, cover)
        self._invalidate(touched=(name,))
        try:
            self.topological_order()
        except NetworkError:
            self.nodes[name] = old
            self._invalidate(touched=(name,))
            raise

    def remove_node(self, name: str) -> None:
        if name in self.outputs:
            raise NetworkError(f"cannot remove output driver {name!r}")
        for other in self.nodes.values():
            if other.name != name and name in other.fanins:
                raise NetworkError(f"node {name!r} still has fanouts")
        del self.nodes[name]
        self._invalidate(touched=(name,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_input(self, name: str) -> bool:
        return name in self._input_set()

    def _input_set(self) -> set[str]:
        return set(self.inputs)

    def signal_exists(self, name: str) -> bool:
        return name in self.nodes or name in self.inputs

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def fanouts(self) -> dict[str, list[str]]:
        """Map from each signal to the node names that read it."""
        result: dict[str, list[str]] = {s: [] for s in self.inputs}
        result.update({s: result.get(s, []) for s in self.nodes})
        for node in self.nodes.values():
            for fanin in node.fanins:
                result[fanin].append(node.name)
        return result

    def topological_order(self) -> list[str]:
        """Internal node names, every node after all its fanins."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        inputs = self._input_set()
        pending: dict[str, int] = {}
        fanout: dict[str, list[str]] = {}
        ready: list[str] = []
        for name, node in self.nodes.items():
            internal_fanins = [f for f in node.fanins if f not in inputs]
            pending[name] = len(internal_fanins)
            for fanin in internal_fanins:
                fanout.setdefault(fanin, []).append(name)
            if not internal_fanins:
                ready.append(name)
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for reader in fanout.get(name, ()):
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self.nodes):
            stuck = sorted(n for n, count in pending.items() if count > 0)
            raise NetworkError(
                f"combinational cycle through {stuck[:5]}")
        self._topo_cache = order
        return list(order)

    def reverse_topological_order(self) -> list[str]:
        return list(reversed(self.topological_order()))

    def transitive_fanin(self, roots: Iterable[str]) -> set[str]:
        """All signals (nodes and PIs) feeding the given roots, inclusive."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self.nodes:
                stack.extend(self.nodes[name].fanins)
        return seen

    def level_map(self) -> dict[str, int]:
        """Logic depth of each signal (PIs at level 0)."""
        levels = {pi: 0 for pi in self.inputs}
        for name in self.topological_order():
            node = self.nodes[name]
            levels[name] = 1 + max((levels[f] for f in node.fanins),
                                   default=0)
        return levels

    def depth(self) -> int:
        levels = self.level_map()
        return max((levels[o] for o in self.outputs), default=0)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def total_literals(self) -> int:
        return sum(node.cover.num_literals for node in self.nodes.values())

    # ------------------------------------------------------------------
    # Evaluation (reference semantics; the fast path is repro.sim)
    # ------------------------------------------------------------------
    def evaluate(self, pi_values: dict[str, bool]) -> dict[str, bool]:
        """Evaluate every signal for one input assignment."""
        values: dict[str, bool] = {}
        for pi in self.inputs:
            values[pi] = bool(pi_values[pi])
        for name in self.topological_order():
            node = self.nodes[name]
            assignment = 0
            for i, fanin in enumerate(node.fanins):
                if values[fanin]:
                    assignment |= 1 << i
            values[name] = node.cover.evaluate(assignment)
        return values

    def evaluate_outputs(self, pi_values: dict[str, bool]) -> dict[str, bool]:
        values = self.evaluate(pi_values)
        return {o: values[o] for o in self.outputs}

    # ------------------------------------------------------------------
    # Copies and renaming
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Network":
        dup = Network(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.nodes = {n: node.copy() for n, node in self.nodes.items()}
        return dup

    def renamed(self, rename: Callable[[str], str],
                rename_inputs: bool = True) -> "Network":
        """A copy with every signal name passed through ``rename``."""
        mapping = {}
        for pi in self.inputs:
            mapping[pi] = rename(pi) if rename_inputs else pi
        for node_name in self.nodes:
            mapping[node_name] = rename(node_name)
        dup = Network(self.name)
        dup.inputs = [mapping[pi] for pi in self.inputs]
        dup.outputs = [mapping[o] for o in self.outputs]
        for name in self.topological_order():
            node = self.nodes[name]
            dup.nodes[mapping[name]] = Node(
                mapping[name], [mapping[f] for f in node.fanins],
                node.cover.copy())
        return dup

    def __repr__(self) -> str:
        return (f"Network({self.name!r}, {len(self.inputs)} PIs, "
                f"{len(self.nodes)} nodes, {len(self.outputs)} POs)")


def embed(dst: Network, src: Network, binding: dict[str, str],
          prefix: str) -> dict[str, str]:
    """Instantiate ``src`` inside ``dst``.

    ``binding`` maps each primary input of ``src`` to an existing signal
    of ``dst``.  Internal nodes are copied under ``prefix``.  Returns the
    mapping from every ``src`` signal name to its ``dst`` name, so the
    caller can wire up ``src``'s outputs.
    """
    mapping: dict[str, str] = {}
    for pi in src.inputs:
        if pi not in binding:
            raise NetworkError(f"embed: unbound input {pi!r}")
        if not dst.signal_exists(binding[pi]):
            raise NetworkError(
                f"embed: binding target {binding[pi]!r} missing in dst")
        mapping[pi] = binding[pi]
    for name in src.topological_order():
        node = src.nodes[name]
        new_name = prefix + name
        counter = 0
        while dst.signal_exists(new_name):
            new_name = f"{prefix}{name}_{counter}"
            counter += 1
        dst.add_node(new_name, [mapping[f] for f in node.fanins],
                     node.cover.copy())
        mapping[name] = new_name
    return mapping


def iter_signals(network: Network) -> Iterator[str]:
    """All signal names: PIs first, then nodes in topological order."""
    yield from network.inputs
    yield from network.topological_order()
