"""Global BDD construction for networks.

Builds, for every signal, the BDD of its *global* Boolean function over
the primary inputs (paper Sec 2.1's "global Boolean function of the
node").  Used by the iterative cube-selection algorithm for implication
checks and by the approximation-percentage metric.  A node budget makes
blow-ups recoverable: callers catch :class:`BddOverflowError` and fall
back to simulation-based checking.

When the manager is the vectorized numpy engine (it exposes
``apply_many``), node functions are built level by level: all cube
literals of a level's nodes are negated in one batch, cube terms and
SOP disjunctions are tree-reduced with batched apply rounds, so the
python-loop overhead is per *level*, not per literal.  The dict oracle
keeps the original per-node scalar loop.
"""

from __future__ import annotations

from repro.bdd import make_manager

from .network import Network


class GlobalBdds:
    """Per-signal global BDDs for one or more networks over shared PIs."""

    def __init__(self, inputs: list[str], max_nodes: int | None = None):
        self.manager = make_manager(len(inputs), max_nodes=max_nodes)
        self.inputs = list(inputs)
        self._pi_index = {pi: i for i, pi in enumerate(inputs)}
        self.functions: dict[str, int] = {
            pi: self.manager.var(i) for i, pi in enumerate(inputs)}

    @classmethod
    def build(cls, network: Network, max_nodes: int | None = None,
              order: str = "dfs") -> "GlobalBdds":
        """Build global BDDs with a chosen input order.

        ``order="dfs"`` (default) orders primary inputs by depth-first
        cone traversal from the outputs — inputs feeding the same cone
        become neighbours in the variable order, which keeps BDDs far
        smaller than declaration order on cone-structured circuits.
        ``order="natural"`` keeps the network's input list order.
        """
        if order == "dfs":
            inputs = dfs_input_order(network)
        elif order == "natural":
            inputs = network.inputs
        else:
            raise ValueError(f"unknown input order {order!r}")
        bdds = cls(inputs, max_nodes=max_nodes)
        bdds.add_network(network)
        return bdds

    def add_network(self, network: Network, prefix: str = "") -> None:
        """Compute global functions for every node of ``network``.

        Signals are registered under ``prefix + name``; primary inputs of
        the network must match this object's input list (shared PI space),
        so original and approximate circuits can be compared directly.
        """
        for pi in network.inputs:
            if pi not in self._pi_index:
                raise ValueError(f"network input {pi!r} not in PI space")
        names = network.topological_order()
        if hasattr(self.manager, "apply_many"):
            self._build_nodes_batched(network, names, prefix)
        else:
            for name in names:
                self._build_node(network, name, prefix)

    def _build_node(self, network: Network, name: str, prefix: str) -> None:
        """(Re)compute one node's global function from its fanins."""
        mgr = self.manager
        node = network.nodes[name]
        fanin_bdds = [self.functions[
            f if f in self._pi_index else prefix + f]
            for f in node.fanins]
        result = mgr.zero
        for cube in node.cover.cubes:
            term = mgr.one
            for i in range(cube.n):
                lit = cube.literal(i)
                if lit == "1":
                    term = mgr.and_(term, fanin_bdds[i])
                elif lit == "0":
                    term = mgr.and_(term, mgr.not_(fanin_bdds[i]))
            result = mgr.or_(result, term)
        self.functions[prefix + name] = result

    def _build_nodes_batched(self, network: Network, names: list[str],
                             prefix: str) -> None:
        """Level-wise batched rebuild of ``names`` (topological order)."""
        from repro.bdd.engine_numpy import OP_AND, OP_OR
        mgr = self.manager
        build_set = set(names)
        level: dict[str, int] = {}
        groups: list[list[str]] = []
        for name in names:
            depth = 0
            for fanin in network.nodes[name].fanins:
                if fanin in build_set:
                    depth = max(depth, level[fanin] + 1)
            level[name] = depth
            while len(groups) <= depth:
                groups.append([])
            groups[depth].append(name)
        for group in groups:
            # Literal functions: batch every needed negation of the level.
            neg_wanted: set[int] = set()
            recipes = []  # (name, [term literal-id lists])
            for name in group:
                node = network.nodes[name]
                fanin_bdds = [self.functions[
                    f if f in self._pi_index else prefix + f]
                    for f in node.fanins]
                terms = []
                for cube in node.cover.cubes:
                    lits = []
                    for i in range(cube.n):
                        lit = cube.literal(i)
                        if lit == "1":
                            lits.append(("+", fanin_bdds[i]))
                        elif lit == "0":
                            lits.append(("-", fanin_bdds[i]))
                            neg_wanted.add(fanin_bdds[i])
                    terms.append(lits)
                recipes.append((name, terms))
            neg_ids = sorted(neg_wanted)
            negated = dict(zip(neg_ids, mgr.not_many(neg_ids))) \
                if neg_ids else {}
            term_lists = []
            shape = []  # terms per node, aligned with recipes
            for name, terms in recipes:
                shape.append(len(terms))
                for lits in terms:
                    term_lists.append([
                        f if sign == "+" else int(negated[f])
                        for sign, f in lits])
            term_ids = _tree_reduce(mgr, OP_AND, term_lists, mgr.one)
            pos = 0
            node_lists = []
            for count in shape:
                node_lists.append(term_ids[pos:pos + count])
                pos += count
            node_ids = _tree_reduce(mgr, OP_OR, node_lists, mgr.zero)
            for (name, _), result in zip(recipes, node_ids):
                self.functions[prefix + name] = result

    def update_network(self, network: Network, prefix: str = "",
                       changed: "frozenset[str] | set[str]" = frozenset(),
                       ) -> int:
        """Incrementally refresh functions after a cone-scoped mutation.

        ``changed`` are the signal names whose local cover or fanin list
        changed since :meth:`add_network` (or the last update) ran for
        this ``prefix``.  Only the changed nodes and their transitive
        fanout are recomputed; BDD canonicity guarantees the refreshed
        functions are identical to a from-scratch rebuild.  Functions of
        deleted signals are dropped.  Returns the number of node
        functions recomputed.
        """
        fanouts = network.fanouts()
        dirty: set[str] = set()
        stack = [s for s in changed if s not in self._pi_index]
        while stack:
            name = stack.pop()
            if name in dirty:
                continue
            dirty.add(name)
            stack.extend(fanouts.get(name, ()))
        # Drop functions of signals that no longer exist (deleted nodes
        # and anything stale under this prefix that the network lost).
        for name in dirty:
            if name not in network.nodes:
                self.functions.pop(prefix + name, None)
        order = network.topological_order()
        todo = [name for name in order if name in dirty]
        if hasattr(self.manager, "apply_many"):
            self._build_nodes_batched(network, todo, prefix)
        else:
            for name in todo:
                self._build_node(network, name, prefix)
        return len(todo)

    def function(self, signal: str) -> int:
        return self.functions[signal]

    def implies(self, a: str, b: str) -> bool:
        return self.manager.implies(self.functions[a], self.functions[b])

    def implies_many(self, pairs: "list[tuple[str, str]]") -> list[bool]:
        """Batched ``a => b`` verdicts for many signal pairs."""
        fs = [self.functions[a] for a, _ in pairs]
        gs = [self.functions[b] for _, b in pairs]
        return [bool(v) for v in self.manager.implies_many(fs, gs)]

    def equal(self, a: str, b: str) -> bool:
        return self.functions[a] == self.functions[b]

    def minterm_fraction(self, signal: str) -> float:
        """Fraction of the input space where the signal is 1."""
        return self.manager.probability(self.functions[signal])

    def minterm_fraction_many(self, signals: list[str]) -> list[float]:
        """Batched minterm fractions (one whole-table sweep on numpy)."""
        roots = [self.functions[s] for s in signals]
        return [float(p) for p in self.manager.probability_many(roots)]


def _tree_reduce(mgr, op: int, lists: "list[list[int]]",
                 identity: int) -> list[int]:
    """Reduce many operand lists with batched apply rounds.

    Each round pairs adjacent operands of every list and applies the
    operator to all pairs at once; empty lists yield ``identity``.
    """
    values = [list(operands) for operands in lists]
    while any(len(operands) > 1 for operands in values):
        fs: list[int] = []
        gs: list[int] = []
        slots: list[tuple[int, int]] = []
        for i, operands in enumerate(values):
            reduced: list = []
            j = 0
            while j + 1 < len(operands):
                slots.append((i, len(reduced)))
                fs.append(operands[j])
                gs.append(operands[j + 1])
                reduced.append(-1)
                j += 2
            if j < len(operands):
                reduced.append(operands[j])
            values[i] = reduced
        results = mgr.apply_many(op, fs, gs)
        for (i, k), result in zip(slots, results):
            values[i][k] = int(result)
    return [operands[0] if operands else identity for operands in values]


def dfs_input_order(network: Network) -> list[str]:
    """Primary inputs in depth-first cone-traversal order.

    Walks the transitive fanin of each output depth-first and records
    inputs at first visit; inputs never reaching an output keep their
    declaration order at the end (every PI must stay a BDD variable).
    """
    seen: set[str] = set()
    order: list[str] = []
    input_set = set(network.inputs)

    def visit(name: str) -> None:
        stack = [name]
        while stack:
            signal = stack.pop()
            if signal in seen:
                continue
            seen.add(signal)
            if signal in input_set:
                order.append(signal)
                continue
            node = network.nodes.get(signal)
            if node is not None:
                stack.extend(reversed(node.fanins))

    for po in network.outputs:
        visit(po)
    for pi in network.inputs:
        if pi not in seen:
            order.append(pi)
    return order
