"""Global BDD construction for networks.

Builds, for every signal, the BDD of its *global* Boolean function over
the primary inputs (paper Sec 2.1's "global Boolean function of the
node").  Used by the iterative cube-selection algorithm for implication
checks and by the approximation-percentage metric.  A node budget makes
blow-ups recoverable: callers catch :class:`BddOverflowError` and fall
back to simulation-based checking.
"""

from __future__ import annotations

from repro.bdd import BddManager

from .network import Network


class GlobalBdds:
    """Per-signal global BDDs for one or more networks over shared PIs."""

    def __init__(self, inputs: list[str], max_nodes: int | None = None):
        self.manager = BddManager(len(inputs), max_nodes=max_nodes)
        self.inputs = list(inputs)
        self._pi_index = {pi: i for i, pi in enumerate(inputs)}
        self.functions: dict[str, int] = {
            pi: self.manager.var(i) for i, pi in enumerate(inputs)}

    @classmethod
    def build(cls, network: Network, max_nodes: int | None = None,
              order: str = "dfs") -> "GlobalBdds":
        """Build global BDDs with a chosen input order.

        ``order="dfs"`` (default) orders primary inputs by depth-first
        cone traversal from the outputs — inputs feeding the same cone
        become neighbours in the variable order, which keeps BDDs far
        smaller than declaration order on cone-structured circuits.
        ``order="natural"`` keeps the network's input list order.
        """
        if order == "dfs":
            inputs = dfs_input_order(network)
        elif order == "natural":
            inputs = network.inputs
        else:
            raise ValueError(f"unknown input order {order!r}")
        bdds = cls(inputs, max_nodes=max_nodes)
        bdds.add_network(network)
        return bdds

    def add_network(self, network: Network, prefix: str = "") -> None:
        """Compute global functions for every node of ``network``.

        Signals are registered under ``prefix + name``; primary inputs of
        the network must match this object's input list (shared PI space),
        so original and approximate circuits can be compared directly.
        """
        for pi in network.inputs:
            if pi not in self._pi_index:
                raise ValueError(f"network input {pi!r} not in PI space")
        for name in network.topological_order():
            self._build_node(network, name, prefix)

    def _build_node(self, network: Network, name: str, prefix: str) -> None:
        """(Re)compute one node's global function from its fanins."""
        mgr = self.manager
        node = network.nodes[name]
        fanin_bdds = [self.functions[
            f if f in self._pi_index else prefix + f]
            for f in node.fanins]
        result = mgr.zero
        for cube in node.cover.cubes:
            term = mgr.one
            for i in range(cube.n):
                lit = cube.literal(i)
                if lit == "1":
                    term = mgr.and_(term, fanin_bdds[i])
                elif lit == "0":
                    term = mgr.and_(term, mgr.not_(fanin_bdds[i]))
            result = mgr.or_(result, term)
        self.functions[prefix + name] = result

    def update_network(self, network: Network, prefix: str = "",
                       changed: "frozenset[str] | set[str]" = frozenset(),
                       ) -> int:
        """Incrementally refresh functions after a cone-scoped mutation.

        ``changed`` are the signal names whose local cover or fanin list
        changed since :meth:`add_network` (or the last update) ran for
        this ``prefix``.  Only the changed nodes and their transitive
        fanout are recomputed; BDD canonicity guarantees the refreshed
        functions are identical to a from-scratch rebuild.  Functions of
        deleted signals are dropped.  Returns the number of node
        functions recomputed.
        """
        fanouts = network.fanouts()
        dirty: set[str] = set()
        stack = [s for s in changed if s not in self._pi_index]
        while stack:
            name = stack.pop()
            if name in dirty:
                continue
            dirty.add(name)
            stack.extend(fanouts.get(name, ()))
        # Drop functions of signals that no longer exist (deleted nodes
        # and anything stale under this prefix that the network lost).
        for name in dirty:
            if name not in network.nodes:
                self.functions.pop(prefix + name, None)
        rebuilt = 0
        order = network.topological_order()
        todo = dirty & set(order)
        for name in order:
            if name in todo:
                self._build_node(network, name, prefix)
                rebuilt += 1
        return rebuilt

    def function(self, signal: str) -> int:
        return self.functions[signal]

    def implies(self, a: str, b: str) -> bool:
        return self.manager.implies(self.functions[a], self.functions[b])

    def equal(self, a: str, b: str) -> bool:
        return self.functions[a] == self.functions[b]

    def minterm_fraction(self, signal: str) -> float:
        """Fraction of the input space where the signal is 1."""
        return self.manager.probability(self.functions[signal])


def dfs_input_order(network: Network) -> list[str]:
    """Primary inputs in depth-first cone-traversal order.

    Walks the transitive fanin of each output depth-first and records
    inputs at first visit; inputs never reaching an output keep their
    declaration order at the end (every PI must stay a BDD variable).
    """
    seen: set[str] = set()
    order: list[str] = []
    input_set = set(network.inputs)

    def visit(name: str) -> None:
        stack = [name]
        while stack:
            signal = stack.pop()
            if signal in seen:
                continue
            seen.add(signal)
            if signal in input_set:
                order.append(signal)
                continue
            node = network.nodes.get(signal)
            if node is not None:
                stack.extend(reversed(node.fanins))

    for po in network.outputs:
        visit(po)
    for pi in network.inputs:
        if pi not in seen:
            order.append(pi)
    return order
