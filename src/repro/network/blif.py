"""BLIF reading and writing for combinational networks.

Supports the subset of BLIF that covers technology-independent logic:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (with on-set or off-set
SOP rows) and constant nodes.  Latches and subcircuits are out of scope —
the paper's flow is purely combinational.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.cubes import Cover, Cube

from .network import Network


class BlifError(ValueError):
    """Malformed BLIF input."""


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a :class:`Network`."""
    lines = _logical_lines(text)
    network = Network()
    declared_outputs: list[str] = []
    pending: list[tuple[str, list[str], list[tuple[str, str]]]] = []
    current: tuple[str, list[str], list[tuple[str, str]]] | None = None

    for line in lines:
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "top"
        elif keyword == ".inputs":
            for name in tokens[1:]:
                network.add_input(name)
        elif keyword == ".outputs":
            declared_outputs.extend(tokens[1:])
        elif keyword == ".names":
            if len(tokens) < 2:
                raise BlifError(".names needs at least an output signal")
            output = tokens[-1]
            fanins = tokens[1:-1]
            current = (output, fanins, [])
            pending.append(current)
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            raise BlifError(f"unsupported BLIF construct {keyword!r}")
        else:
            if current is None:
                raise BlifError(f"SOP row outside .names block: {line!r}")
            output_name, fanins, rows = current
            if fanins:
                if len(tokens) != 2:
                    raise BlifError(f"malformed SOP row: {line!r}")
                pattern, value = tokens
                if len(pattern) != len(fanins):
                    raise BlifError(
                        f"row width {len(pattern)} != fanin count "
                        f"{len(fanins)} for node {output_name!r}")
            else:
                if len(tokens) != 1:
                    raise BlifError(f"malformed constant row: {line!r}")
                pattern, value = "", tokens[0]
            if value not in ("0", "1"):
                raise BlifError(f"SOP row value must be 0 or 1: {line!r}")
            rows.append((pattern, value))

    for output_name, fanins, rows in pending:
        cover = _rows_to_cover(output_name, len(fanins), rows)
        network.add_node(output_name, fanins, cover)
    for name in declared_outputs:
        if not network.signal_exists(name):
            raise BlifError(f"declared output {name!r} never defined")
        network.add_output(name)
    return network


def _rows_to_cover(name: str, n: int, rows: list[tuple[str, str]]) -> Cover:
    if not rows:
        return Cover.zero(n)  # .names with no rows is constant 0
    values = {value for _, value in rows}
    if len(values) != 1:
        raise BlifError(f"node {name!r} mixes on-set and off-set rows")
    cover = Cover(n, [Cube.from_string(p) for p, _ in rows if p != ""])
    if rows[0][0] == "":  # constant node
        return Cover.one(n) if values == {"1"} else Cover.zero(n)
    if values == {"1"}:
        return cover
    return cover.complement()  # off-set rows define the complement


def _logical_lines(text: str):
    """Strip comments, join continuation lines, drop blanks."""
    joined: list[str] = []
    carry = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not carry:
            continue
        if line.endswith("\\"):
            carry += line[:-1] + " "
            continue
        full = (carry + line).strip()
        carry = ""
        if full:
            joined.append(full)
    if carry.strip():
        joined.append(carry.strip())
    return joined


def read_blif(path: str | Path) -> Network:
    return parse_blif(Path(path).read_text())


def write_blif(network: Network, path: str | Path | None = None) -> str:
    """Serialize to BLIF text; also writes ``path`` when given."""
    out = io.StringIO()
    out.write(f".model {network.name}\n")
    out.write(".inputs " + " ".join(network.inputs) + "\n")
    out.write(".outputs " + " ".join(network.outputs) + "\n")
    for name in network.topological_order():
        node = network.nodes[name]
        out.write(".names " + " ".join(node.fanins + [name]) + "\n")
        constant = node.constant_value()
        if not node.fanins:
            if constant:
                out.write("1\n")
            # constant 0 is an empty .names block
        else:
            for cube in node.cover.cubes:
                out.write(cube.to_string() + " 1\n")
    out.write(".end\n")
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
