"""BLIF reading and writing for combinational networks.

Supports the subset of BLIF that covers technology-independent logic:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (with on-set or off-set
SOP rows) and constant nodes.  Latches and subcircuits are out of scope —
the paper's flow is purely combinational.

Malformed input raises :class:`BlifError` (a :class:`NetworkError`)
carrying the source name and line number of the offending construct, so
CLI users see ``circuit.blif, line 12: ...`` instead of a bare
``IndexError``.  ``.names`` blocks may reference signals defined later
in the file (the BLIF spec allows any order); nodes are inserted in
dependency order after the whole file is read.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.cubes import Cover, Cube

from .network import Network, NetworkError


class BlifError(NetworkError):
    """Malformed BLIF input (with source name and line number)."""


class _Names:
    """One pending ``.names`` block: output, fanins, SOP rows."""

    __slots__ = ("lineno", "output", "fanins", "rows")

    def __init__(self, lineno: int, output: str, fanins: list[str]):
        self.lineno = lineno
        self.output = output
        self.fanins = fanins
        self.rows: list[tuple[int, str, str]] = []  # (lineno, pattern, value)


def parse_blif(text: str, source: str | None = None) -> Network:
    """Parse BLIF text into a :class:`Network`.

    ``source`` names the input (file path) in error messages.
    """
    where = source or "<blif>"

    def fail(lineno: int, message: str) -> "NoReturn":  # noqa: F821
        raise BlifError(f"{where}, line {lineno}: {message}")

    network = Network()
    declared_outputs: list[tuple[int, str]] = []
    pending: list[_Names] = []
    by_name: dict[str, _Names] = {}
    input_lines: dict[str, int] = {}
    current: _Names | None = None

    for lineno, line in _logical_lines(text):
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "top"
        elif keyword == ".inputs":
            for name in tokens[1:]:
                if name in input_lines:
                    fail(lineno, f"primary input {name!r} already "
                                 f"declared at line {input_lines[name]}")
                network.add_input(name)
                input_lines[name] = lineno
        elif keyword == ".outputs":
            declared_outputs.extend((lineno, name) for name in tokens[1:])
        elif keyword == ".names":
            if len(tokens) < 2:
                fail(lineno, ".names needs at least an output signal")
            output = tokens[-1]
            fanins = tokens[1:-1]
            if output in input_lines:
                fail(lineno, f".names {output!r} redefines the primary "
                             f"input declared at line "
                             f"{input_lines[output]}")
            if output in by_name:
                fail(lineno, f".names {output!r} already defined at "
                             f"line {by_name[output].lineno}")
            if len(set(fanins)) != len(fanins):
                fail(lineno, f".names {output!r} repeats a fanin signal")
            current = _Names(lineno, output, fanins)
            pending.append(current)
            by_name[output] = current
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            fail(lineno, f"unsupported BLIF construct {keyword!r}")
        else:
            if current is None:
                fail(lineno, f"SOP row outside a .names block: {line!r}")
            if current.fanins:
                if len(tokens) != 2:
                    fail(lineno, f"malformed SOP row: {line!r}")
                pattern, value = tokens
                if len(pattern) != len(current.fanins):
                    fail(lineno,
                         f"row width {len(pattern)} != fanin count "
                         f"{len(current.fanins)} for node "
                         f"{current.output!r}")
            else:
                if len(tokens) != 1:
                    fail(lineno, f"malformed constant row: {line!r}")
                pattern, value = "", tokens[0]
            bad = set(pattern) - {"0", "1", "-"}
            if bad:
                fail(lineno, f"invalid SOP row character "
                             f"{sorted(bad)[0]!r} in {line!r}")
            if value not in ("0", "1"):
                fail(lineno, f"SOP row value must be 0 or 1: {line!r}")
            current.rows.append((lineno, pattern, value))

    _insert_nodes(network, pending, fail)
    for lineno, name in declared_outputs:
        if not network.signal_exists(name):
            fail(lineno, f"declared output {name!r} never defined")
        network.add_output(name)
    return network


def _insert_nodes(network: Network, pending: list[_Names], fail) -> None:
    """Add the pending ``.names`` blocks in dependency order.

    BLIF permits forward references, so blocks are topologically sorted
    before insertion; unknown fanins and definition cycles are reported
    with the offending block's line number.
    """
    defined = set(network.inputs) | {entry.output for entry in pending}
    waiting: dict[str, int] = {}
    readers: dict[str, list[_Names]] = {}
    ready: list[_Names] = []
    for entry in pending:
        internal = []
        for fanin in entry.fanins:
            if fanin not in defined:
                fail(entry.lineno,
                     f"node {entry.output!r}: fanin {fanin!r} is never "
                     f"defined")
            if fanin not in network.inputs:
                internal.append(fanin)
        waiting[entry.output] = len(internal)
        for fanin in internal:
            readers.setdefault(fanin, []).append(entry)
        if not internal:
            ready.append(entry)
    placed = 0
    while ready:
        entry = ready.pop()
        cover = _rows_to_cover(entry, fail)
        network.add_node(entry.output, entry.fanins, cover)
        placed += 1
        for reader in readers.get(entry.output, ()):
            waiting[reader.output] -= 1
            if waiting[reader.output] == 0:
                ready.append(reader)
    if placed != len(pending):
        stuck = [e for e in pending if waiting.get(e.output, 0) > 0]
        names = sorted(e.output for e in stuck)
        fail(min(e.lineno for e in stuck),
             f"combinational cycle through .names blocks {names[:5]}")


def _rows_to_cover(entry: _Names, fail) -> Cover:
    n = len(entry.fanins)
    rows = entry.rows
    if not rows:
        return Cover.zero(n)  # .names with no rows is constant 0
    values = {value for _, _, value in rows}
    if len(values) != 1:
        fail(rows[0][0], f"node {entry.output!r} mixes on-set and "
                         f"off-set rows")
    cover = Cover(n, [Cube.from_string(p) for _, p, _ in rows if p != ""])
    if rows[0][1] == "":  # constant node
        return Cover.one(n) if values == {"1"} else Cover.zero(n)
    if values == {"1"}:
        return cover
    return cover.complement()  # off-set rows define the complement


def _logical_lines(text: str):
    """Strip comments, join continuations; yields ``(lineno, line)``."""
    joined: list[tuple[int, str]] = []
    carry = ""
    carry_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not carry:
            continue
        if line.endswith("\\"):
            if not carry:
                carry_start = number
            carry += line[:-1] + " "
            continue
        full = (carry + line).strip()
        start = carry_start if carry else number
        carry = ""
        if full:
            joined.append((start, full))
    if carry.strip():
        joined.append((carry_start, carry.strip()))
    return joined


def read_blif(path: str | Path) -> Network:
    path = Path(path)
    return parse_blif(path.read_text(), source=str(path))


def write_blif(network: Network, path: str | Path | None = None) -> str:
    """Serialize to BLIF text; also writes ``path`` when given."""
    out = io.StringIO()
    out.write(f".model {network.name}\n")
    out.write(".inputs " + " ".join(network.inputs) + "\n")
    out.write(".outputs " + " ".join(network.outputs) + "\n")
    for name in network.topological_order():
        node = network.nodes[name]
        out.write(".names " + " ".join(node.fanins + [name]) + "\n")
        constant = node.constant_value()
        if not node.fanins:
            if constant:
                out.write("1\n")
            # constant 0 is an empty .names block
        else:
            for cube in node.cover.cubes:
                out.write(cube.to_string() + " 1\n")
    out.write(".end\n")
    text = out.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
