"""Multi-level Boolean networks: structure, BLIF I/O, transforms, BDDs."""

from .node import Node
from .network import Network, NetworkError, embed, iter_signals
from .blif import BlifError, parse_blif, read_blif, write_blif
from .transform import (cleanup, eliminate, propagate_constants, strash,
                        sweep, trim_unread_fanins)
from .globalbdd import GlobalBdds, dfs_input_order

__all__ = [
    "BlifError", "GlobalBdds", "dfs_input_order", "Network", "NetworkError", "Node",
    "cleanup", "eliminate", "embed", "iter_signals", "parse_blif",
    "propagate_constants", "read_blif", "strash", "sweep",
    "trim_unread_fanins", "write_blif",
]
