"""Network transformations: cleanup, elimination, strashing, decomposition.

These provide the technology-independent restructuring the paper gets
from ABC: dead-logic sweeping, constant propagation, node elimination
(collapse into fanouts), structural hashing, and decomposition into
bounded-fanin nodes that technology mapping consumes.
"""

from __future__ import annotations

from repro.bdd import BddManager, cover_from_bdd
from repro.cubes import Cover, Cube

from .network import Network


def sweep(network: Network) -> int:
    """Remove nodes that do not reach any primary output.

    Returns the number of removed nodes.
    """
    live = network.transitive_fanin(network.outputs)
    dead = [name for name in network.nodes if name not in live]
    for name in dead:
        del network.nodes[name]
    if dead:
        network._invalidate(touched=dead)
    return len(dead)


def propagate_constants(network: Network) -> int:
    """Fold constant nodes into their fanouts.  Returns nodes folded."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for name in network.topological_order():
            node = network.nodes[name]
            value = node.constant_value()
            if value is None or not node.fanins:
                continue
            # Rebuild as a fanin-free constant so fanouts can fold it.
            network.nodes[name] = type(node)(
                name, [], Cover.one(0) if value else Cover.zero(0))
            network._invalidate(touched=(name,))
            changed = True
        for name in list(network.topological_order()):
            node = network.nodes[name]
            const_fanins = [
                f for f in node.fanins
                if f in network.nodes and network.nodes[f].is_constant]
            if not const_fanins:
                continue
            cover = node.cover
            fanins = list(node.fanins)
            for fanin in const_fanins:
                value = network.nodes[fanin].constant_value()
                index = fanins.index(fanin)
                cover = _restrict_cover(cover, index, bool(value))
                fanins.pop(index)
            network.nodes[name] = type(node)(name, fanins, cover)
            network._invalidate(touched=(name,))
            folded += 1
            changed = True
    return folded


def _restrict_cover(cover: Cover, index: int, value: bool) -> Cover:
    """Cofactor ``cover`` on variable ``index`` and drop the variable."""
    restricted = cover.cofactor(index, 1 if value else 0)
    cubes = []
    for cube in restricted.cubes:
        ones = _drop_bit(cube.ones, index)
        zeros = _drop_bit(cube.zeros, index)
        cubes.append(Cube(cover.n - 1, ones, zeros))
    return Cover(cover.n - 1, cubes).sccc()


def _drop_bit(mask: int, index: int) -> int:
    low = mask & ((1 << index) - 1)
    high = mask >> (index + 1)
    return low | (high << index)


def eliminate(network: Network, max_support: int = 10,
              max_cubes: int = 32) -> int:
    """Collapse single-fanout nodes into their readers.

    A node is eliminated when it has exactly one fanout, is not a primary
    output, and the merged cover stays within the given support / cube
    budgets.  Returns the number of eliminated nodes.
    """
    eliminated = 0
    changed = True
    while changed:
        changed = False
        fanouts = network.fanouts()
        outputs = set(network.outputs)
        # One full pass per iteration; nodes whose neighbourhood was
        # already rewritten this pass are deferred to the next pass so
        # the cached fanout map stays valid.
        dirty: set[str] = set()
        for name in network.topological_order():
            if name in outputs or name not in network.nodes \
                    or name in dirty:
                continue
            readers = fanouts.get(name, [])
            if len(readers) != 1 or readers[0] not in network.nodes \
                    or readers[0] in dirty:
                continue
            reader = network.nodes[readers[0]]
            merged = _merge_support(reader.fanins, name,
                                    network.nodes[name].fanins)
            if len(merged) > max_support:
                continue
            fanins, cover = _compose_cover(network, reader, name, merged)
            if len(cover) > max_cubes:
                continue
            # Collapsing a fanin cannot create a cycle (all new edges
            # run from strictly earlier signals), so the full
            # replace_node acyclicity re-check is skipped.
            network.nodes[reader.name] = type(reader)(
                reader.name, fanins, cover)
            del network.nodes[name]
            network._invalidate(touched=(reader.name, name))
            dirty.add(reader.name)
            dirty.update(fanins)
            eliminated += 1
            changed = True
    return eliminated


def _merge_support(reader_fanins: list[str], victim: str,
                   victim_fanins: list[str]) -> list[str]:
    merged = [f for f in reader_fanins if f != victim]
    for fanin in victim_fanins:
        if fanin not in merged:
            merged.append(fanin)
    return merged


def _compose_cover(network: Network, reader, victim: str,
                   merged: list[str]) -> tuple[list[str], Cover]:
    """Reader's cover with ``victim`` replaced by its own function.

    Returns the (possibly reduced) fanin list and the matching cover.
    """
    mgr = BddManager(len(merged))
    position = {name: i for i, name in enumerate(merged)}
    victim_node = network.nodes[victim]
    victim_bdd = mgr.from_cover(
        victim_node.cover, [position[f] for f in victim_node.fanins])
    fanin_bdds = []
    for fanin in reader.fanins:
        if fanin == victim:
            fanin_bdds.append(victim_bdd)
        else:
            fanin_bdds.append(mgr.var(position[fanin]))
    # Evaluate the reader's cover over the fanin functions.
    result = mgr.zero
    for cube in reader.cover.cubes:
        term = mgr.one
        for i in range(cube.n):
            lit = cube.literal(i)
            if lit == "1":
                term = mgr.and_(term, fanin_bdds[i])
            elif lit == "0":
                term = mgr.and_(term, mgr.not_(fanin_bdds[i]))
        result = mgr.or_(result, term)
    cover = cover_from_bdd(mgr, result)
    support = cover.support
    if support == (1 << len(merged)) - 1:
        return list(merged), cover
    # Re-extract over the reduced support for a tight fanin list.
    keep = [i for i in range(len(merged)) if support >> i & 1]
    squeezed = []
    for cube in cover.cubes:
        ones = zeros = 0
        for j, i in enumerate(keep):
            if cube.ones >> i & 1:
                ones |= 1 << j
            if cube.zeros >> i & 1:
                zeros |= 1 << j
        squeezed.append(Cube(len(keep), ones, zeros))
    return [merged[i] for i in keep], Cover(len(keep), squeezed)


def trim_unread_fanins(network: Network) -> int:
    """Drop fanins that no longer appear in a node's cover.

    Cube selection can remove every literal on a fanin; trimming the
    fanin list afterwards lets ``sweep`` reclaim the now-dangling cone.
    Returns the number of trimmed fanin references.
    """
    trimmed = 0
    for name in list(network.topological_order()):
        node = network.nodes[name]
        support = node.cover.support
        full = (1 << len(node.fanins)) - 1
        if support == full:
            continue
        keep = [i for i in range(len(node.fanins)) if support >> i & 1]
        cubes = []
        for cube in node.cover.cubes:
            ones = zeros = 0
            for j, i in enumerate(keep):
                if cube.ones >> i & 1:
                    ones |= 1 << j
                if cube.zeros >> i & 1:
                    zeros |= 1 << j
            cubes.append(Cube(len(keep), ones, zeros))
        trimmed += len(node.fanins) - len(keep)
        fanins = [node.fanins[i] for i in keep]
        network.nodes[name] = type(node)(name, fanins,
                                         Cover(len(keep), cubes))
        network._invalidate(touched=(name,))
    return trimmed


def strash(network: Network) -> int:
    """Structural hashing: merge nodes with identical fanins and cover.

    Returns the number of merged (removed) nodes.
    """
    merged = 0
    outputs = set(network.outputs)
    changed = True
    while changed:
        changed = False
        seen: dict[tuple, str] = {}
        replace: dict[str, str] = {}
        for name in network.topological_order():
            node = network.nodes[name]
            key = (tuple(node.fanins),
                   tuple(sorted((c.ones, c.zeros) for c in node.cover.cubes)))
            if key in seen and name not in outputs:
                # Output drivers keep their identity: primary-output
                # names must survive optimization so circuits stay
                # name-aligned for CED assembly.
                replace[name] = seen[key]
            elif key not in seen:
                seen[key] = name
        if replace:
            changed = True
            merged += len(replace)
            touched = set(replace)
            for node in network.nodes.values():
                if any(f in replace for f in node.fanins):
                    touched.add(node.name)
                node.fanins = [replace.get(f, f) for f in node.fanins]
                _dedup_fanins(node)
            network.outputs = [replace.get(o, o) for o in network.outputs]
            for name in replace:
                del network.nodes[name]
            network._invalidate(touched=touched)
    return merged


def _dedup_fanins(node) -> None:
    """Repair a node whose fanin list gained duplicates after merging.

    Duplicate fanins are collapsed onto one variable: cubes whose literals
    disagree on the duplicated signal vanish; agreeing literals merge.
    """
    if len(set(node.fanins)) == len(node.fanins):
        return
    unique: list[str] = []
    slot: list[int] = []
    for fanin in node.fanins:
        if fanin not in unique:
            unique.append(fanin)
        slot.append(unique.index(fanin))
    cubes = []
    for cube in node.cover.cubes:
        ones = zeros = 0
        dead = False
        for i in range(cube.n):
            j = slot[i]
            if cube.ones >> i & 1:
                if zeros >> j & 1:
                    dead = True
                    break
                ones |= 1 << j
            elif cube.zeros >> i & 1:
                if ones >> j & 1:
                    dead = True
                    break
                zeros |= 1 << j
        if not dead:
            cubes.append(Cube(len(unique), ones, zeros))
    node.fanins = unique
    node.cover = Cover(len(unique), cubes).sccc()


def cleanup(network: Network) -> None:
    """Standard cleanup pipeline: constants, strash, sweep."""
    propagate_constants(network)
    strash(network)
    sweep(network)
