"""Nodes of the technology-independent multi-level network.

Each node carries a *local* Boolean function — an SOP cover whose variable
``i`` is the node's ``i``-th fanin (paper Sec 2.1: "the local Boolean
function of nodes in the network can be expressed as a sum-of-products
expression in terms of the local fanin nodes").  The *global* function of
a node (over primary inputs) is never stored; it is derived on demand by
:mod:`repro.network.globalbdd` or by simulation.
"""

from __future__ import annotations

from repro.cubes import Cover


class Node:
    """A named internal node with fanins and a local SOP cover."""

    __slots__ = ("name", "fanins", "cover")

    def __init__(self, name: str, fanins: list[str], cover: Cover):
        if cover.n != len(fanins):
            raise ValueError(
                f"node {name!r}: cover has {cover.n} variables but "
                f"{len(fanins)} fanins")
        if len(set(fanins)) != len(fanins):
            raise ValueError(f"node {name!r}: duplicate fanin")
        self.name = name
        self.fanins = list(fanins)
        self.cover = cover

    @property
    def is_constant(self) -> bool:
        return not self.fanins

    def constant_value(self) -> bool | None:
        """The node's value when it is constant, else None.

        A node is constant when it has no fanins, or when its cover is
        syntactically the zero cover or a tautology cube.
        """
        if not self.fanins:
            return not self.cover.is_zero()
        if self.cover.is_zero():
            return False
        if any(c.num_literals == 0 for c in self.cover.cubes):
            return True
        return None

    def fanin_index(self, name: str) -> int:
        return self.fanins.index(name)

    def copy(self) -> "Node":
        return Node(self.name, list(self.fanins), self.cover.copy())

    def __repr__(self) -> str:
        return (f"Node({self.name!r}, fanins={self.fanins}, "
                f"cover={self.cover.to_strings()})")
