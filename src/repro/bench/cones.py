"""Single-output cone extraction (Table 1 workloads).

Table 1 evaluates approximate synthesis on single-output cones extracted
from benchmark circuits.  :func:`extract_cone` carves the transitive
fanin of one primary output into a standalone network.
"""

from __future__ import annotations

from repro.network import Network


def extract_cone(network: Network, output: str,
                 name: str | None = None) -> Network:
    """The standalone subcircuit driving one primary output."""
    if output not in network.outputs:
        raise ValueError(f"{output!r} is not a primary output")
    cone_signals = network.transitive_fanin([output])
    cone = Network(name or f"{network.name}_{output}")
    for pi in network.inputs:
        if pi in cone_signals:
            cone.add_input(pi)
    for node_name in network.topological_order():
        if node_name in cone_signals:
            node = network.nodes[node_name]
            cone.add_node(node_name, list(node.fanins), node.cover.copy())
    cone.add_output(output)
    return cone


def largest_cone(network: Network) -> Network:
    """The cone of the output with the most logic underneath it."""
    best_output = max(
        network.outputs,
        key=lambda po: len(network.transitive_fanin([po])))
    return extract_cone(network, best_output)
