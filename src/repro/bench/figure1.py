"""The Figure 1 example: exact vs ODC cube selection, reconstructed.

The paper's Figure 1 shows a five-node circuit where, under the type
assignment {n2: 1, n5: 1, rest: DC},

* exact cube selection keeps only the cube reading ``n2`` (solution 1);
* adding ``n4`` to the type-1 set admits a second cube (solution 2);
* ODC-based selection — with the *same* DC-heavy assignment — discovers
  the additional cube ``-11`` over (n2, n3, n4), because the DC fanins
  n3 and n4 are individually unobservable on that cube.

The figure's netlist is not published in the text; this reconstruction
uses ``n5 = n2 + n3 + n4``, for which all three published selection
outcomes (one conforming cube, two conforming cubes, and the extra ODC
cube ``-11``) hold exactly.
"""

from __future__ import annotations

from repro.approx import NodeType, exact_select, odc_select
from repro.cubes import Cover
from repro.network import Network


def figure1_network() -> Network:
    """The reconstructed example circuit of Figure 1(a)."""
    net = Network("figure1")
    for pi in "abcd":
        net.add_input(pi)
    net.add_node("n1", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("n2", ["n1", "c"], Cover.from_strings(["1-", "-1"]))
    net.add_node("n3", ["b", "c"], Cover.from_strings(["11"]))
    net.add_node("n4", ["c", "d"], Cover.from_strings(["11"]))
    net.add_node("n5", ["n2", "n3", "n4"],
                 Cover.from_strings(["1--", "-1-", "--1"]))
    net.add_output("n5")
    return net


def figure1_selections() -> dict[str, Cover]:
    """The three published selection outcomes at node n5.

    Returns phase covers over n5's fanins (n2, n3, n4):
    ``solution1`` (exact; n2/n5 type 1, rest DC), ``solution2`` (exact;
    n2/n4/n5 type 1), and ``odc`` (ODC-based with solution 1's types).
    """
    sop = figure1_network().nodes["n5"].cover
    sol1_types = [NodeType.ONE, NodeType.DC, NodeType.DC]
    sol2_types = [NodeType.ONE, NodeType.DC, NodeType.ONE]
    return {
        "solution1": exact_select(sop, sol1_types),
        "solution2": exact_select(sop, sol2_types),
        "odc": odc_select(sop, sol1_types),
    }
