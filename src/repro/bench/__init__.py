"""Benchmark circuits: generators, suite, cones, the Figure 1 example."""

from .generators import random_network, sized_network
from .suite import (BenchmarkSpec, TABLE1_CONE_SPECS, TABLE2_SPECS,
                    load_benchmark, tiny_benchmark)
from .cones import extract_cone, largest_cone
from .figure1 import figure1_network, figure1_selections

__all__ = [
    "BenchmarkSpec", "TABLE1_CONE_SPECS", "TABLE2_SPECS", "extract_cone",
    "figure1_network", "figure1_selections", "largest_cone",
    "load_benchmark", "random_network", "sized_network",
    "tiny_benchmark",
]
