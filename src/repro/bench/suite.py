"""The benchmark suite: generated stand-ins for the paper's circuits.

Each entry mirrors one MCNC benchmark from Table 1/2 of the paper:
the same name, primary input/output counts (taken from the published
MCNC profiles), and a generated network sized so its quick-mapped gate
count approximates the paper's reported gate count.  See DESIGN.md for
the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.network import Network
from repro.synth import quick_map

from .generators import random_network, sized_network


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one generated benchmark circuit."""

    name: str
    target_gates: int     # paper's reported gate count
    n_inputs: int         # MCNC profile
    n_outputs: int        # MCNC profile
    seed: int
    and_bias: float = 0.62
    max_fanin: int = 4


#: Table 2 benchmarks (full circuits).  I/O counts follow the MCNC
#: profiles; gate counts follow the paper's "Gates" column.
TABLE2_SPECS = {
    "cmb": BenchmarkSpec("cmb", 57, 16, 4, seed=9101),
    "cordic": BenchmarkSpec("cordic", 116, 23, 2, seed=9102),
    "term1": BenchmarkSpec("term1", 260, 34, 10, seed=9103),
    "x1": BenchmarkSpec("x1", 442, 51, 35, seed=9104),
    "i2": BenchmarkSpec("i2", 440, 201, 1, seed=9105, and_bias=0.7),
    "frg2": BenchmarkSpec("frg2", 1089, 143, 139, seed=9106),
    "dalu": BenchmarkSpec("dalu", 1166, 75, 16, seed=9107),
    "i10": BenchmarkSpec("i10", 2866, 257, 224, seed=9108),
}

#: Table 1 benchmarks: single-output cones of the stated gate counts.
TABLE1_CONE_SPECS = {
    "i8": BenchmarkSpec("i8", 106, 30, 1, seed=9201, and_bias=0.68),
    "des": BenchmarkSpec("des", 191, 48, 1, seed=9202, and_bias=0.55),
    "dalu": BenchmarkSpec("dalu", 862, 64, 1, seed=9203, and_bias=0.66),
    "i10": BenchmarkSpec("i10", 1141, 80, 1, seed=9204, and_bias=0.64),
}


def _gate_counter(network: Network) -> int:
    return quick_map(network).gate_count


@lru_cache(maxsize=None)
def load_benchmark(name: str, table: int = 2) -> Network:
    """Build (and cache) a suite benchmark by name.

    ``table=2`` selects the full circuits, ``table=1`` the single-output
    cones of Table 1.
    """
    specs = TABLE2_SPECS if table == 2 else TABLE1_CONE_SPECS
    if name not in specs:
        raise KeyError(f"unknown benchmark {name!r} for table {table}; "
                       f"known: {sorted(specs)}")
    spec = specs[name]
    return sized_network(
        spec.seed, spec.target_gates, spec.n_inputs, spec.n_outputs,
        _gate_counter, name=spec.name, and_bias=spec.and_bias,
        max_fanin=spec.max_fanin)


def tiny_benchmark(seed: int = 7, name: str = "tiny") -> Network:
    """A small deterministic circuit for tests and examples."""
    return random_network(seed, n_nodes=24, n_inputs=8, n_outputs=3,
                          name=name)
