"""Seeded benchmark-circuit generation.

The paper evaluates on MCNC benchmark netlists, which are not
redistributable here.  This module generates deterministic multi-level
networks with controlled size, depth, fanin distribution, and output
error skew — the structural properties the synthesis algorithm and the
CED evaluation actually exercise.  The suite in :mod:`repro.bench.suite`
instantiates one generated stand-in per paper benchmark, matching its
gate count and I/O profile.

Skew control: the paper picked "logic benchmarks with a reasonably large
skew in the errors at the outputs".  Nodes here are biased toward
AND-like (low signal probability) or OR-like (high) functions, which
skews output error directions the same way.
"""

from __future__ import annotations

import random

from repro.cubes import Cover, Cube
from repro.network import Network, sweep


def random_network(seed: int, n_nodes: int, n_inputs: int,
                   n_outputs: int, max_fanin: int = 4,
                   and_bias: float = 0.6, locality: int = 24,
                   xor_fraction: float = 0.08, periphery: float = 0.45,
                   name: str = "random") -> Network:
    """Generate a random combinational network.

    The network has two tiers, mimicking real netlists:

    * a **spine** of cross-linked logic that carries the outputs, with
      moderate signal probabilities;
    * **peripheral cones** — tree-shaped sub-circuits consumed by spine
      nodes through low-probability "exception" cubes.  Roughly a
      ``periphery`` fraction of nodes lives in these cones.  They model
      the rarely-exercised logic that makes real circuits compressible
      and lets approximate synthesis trade large area chunks for small
      coverage losses (cf. des in Table 1: 95.6% approximation at 2.7%
      area).

    ``and_bias`` steers nodes toward AND-like (probability below 1/2,
    0->1-dominated output errors) vs OR-like shapes; ``locality`` bounds
    fanin distance.  Everything is driven by ``seed``.
    """
    rng = random.Random(seed)
    net = Network(name)
    spine: list[str] = []
    tips: list[str] = []           # unconsumed peripheral cone tips
    periph_pool: list[str] = []    # all peripheral signals + PIs
    probs: dict[str, float] = {}
    for i in range(n_inputs):
        name_i = net.add_input(f"pi{i}")
        spine.append(name_i)
        periph_pool.append(name_i)
        probs[name_i] = 0.5

    for i in range(n_nodes):
        build_peripheral = rng.random() < periphery
        if build_peripheral:
            window = periph_pool[-locality:]
            k = rng.randint(2, min(max_fanin, len(window)))
            fanins = rng.sample(window, k)
            fanin_probs = [probs[f] for f in fanins]
            cover = _random_cover(rng, k, fanin_probs, and_bias,
                                  xor_fraction)
            node_name = net.add_node(f"n{i}", fanins, cover)
            probs[node_name] = cover.probability(fanin_probs)
            periph_pool.append(node_name)
            # Consumed children stop being tips: cones stay tree-like.
            for f in fanins:
                if f in tips:
                    tips.remove(f)
            tips.append(node_name)
            continue
        window = spine[-locality:]
        k = rng.randint(2, min(max_fanin, len(window)))
        fanins = rng.sample(window, k)
        fanin_probs = [probs[f] for f in fanins]
        cover = _random_cover(rng, k, fanin_probs, and_bias,
                              xor_fraction)
        if tips and rng.random() < 0.7:
            # Attach a peripheral cone through a low-mass cube: the
            # spine node also fires when the (rare) exception holds.
            tip = tips.pop(rng.randrange(len(tips)))
            fanins = fanins + [tip]
            fanin_probs = fanin_probs + [probs[tip]]
            cover = _attach_exception(rng, cover, fanin_probs)
        node_name = net.add_node(f"n{i}", fanins, cover)
        probs[node_name] = cover.probability(fanin_probs)
        spine.append(node_name)

    outputs = _pick_outputs(rng, net, n_outputs)
    for po in outputs:
        net.add_output(po)
    sweep(net)
    return net


def _attach_exception(rng: random.Random, cover: Cover,
                      fanin_probs: list[float]) -> Cover:
    """Widen a cover by one fanin, read only through a low-mass cube."""
    k = cover.n + 1
    widened = [Cube(k, c.ones, c.zeros) for c in cover.cubes]
    tip_prob = fanin_probs[-1]
    rare_phase = 1 if tip_prob < 0.5 else 0
    exception = Cube.full(k).with_literal(k - 1, rare_phase)
    # Guard the exception with one or two spine literals so its mass is
    # small even when the cone tip probability is moderate.
    for i in rng.sample(range(k - 1), min(2, k - 1)):
        guard_phase = 0 if fanin_probs[i] >= 0.5 else 1
        if rng.random() < 0.7:
            exception = exception.with_literal(i, guard_phase)
    return Cover(k, widened + [exception]).sccc()


def _random_cover(rng: random.Random, k: int, fanin_probs: list[float],
                  and_bias: float, xor_fraction: float) -> Cover:
    """A random node function with a non-degenerate signal probability.

    Literal phases are chosen against the fanin probabilities so node
    probabilities stay away from 0/1 (deep unbiased random logic
    saturates to constants otherwise, which no real benchmark does).
    ``and_bias`` steers nodes toward AND-like (probability below 1/2,
    0->1-dominated errors) vs OR-like shapes.
    """
    roll = rng.random()
    if k == 2 and roll < xor_fraction:
        return Cover.from_strings(["10", "01"]) if rng.random() < 0.5 \
            else Cover.from_strings(["11", "00"])
    and_like = roll < xor_fraction + and_bias * (1 - xor_fraction)
    if and_like:
        # Cubes of high-probability literals: P(node) in a moderate
        # low band.  A second, narrower cube adds SOP heterogeneity.
        width = k if k <= 3 else rng.randint(3, k)
        cubes = [_biased_cube(rng, k, fanin_probs, width, high=True)]
        if rng.random() < 0.5 and k >= 3:
            cubes.append(_biased_cube(rng, k, fanin_probs,
                                      rng.randint(2, k - 1), high=True))
        return Cover(k, cubes).sccc()
    # OR-like: a few single-literal cubes of low-probability literals,
    # plus, frequently, one wide low-mass cube — the "exception logic"
    # found in real netlists, which approximation prunes away.
    n_lits = rng.randint(2, max(2, k - 1))
    indices = rng.sample(range(k), n_lits)
    cubes = []
    for i in indices:
        positive = fanin_probs[i] <= 0.5 or rng.random() < 0.25
        cubes.append(Cube.full(k).with_literal(i, 1 if positive else 0))
    if rng.random() < 0.6 and k >= 3:
        cubes.append(_biased_cube(rng, k, fanin_probs,
                                  rng.randint(2, k), high=False))
    return Cover(k, cubes).sccc()


def _biased_cube(rng: random.Random, k: int, fanin_probs: list[float],
                 width: int, high: bool) -> Cube:
    """A cube over ``width`` fanins whose literal phases mostly track
    the likely fanin values (keeps the cube's probability mass up)."""
    cube = Cube.full(k)
    for i in rng.sample(range(k), width):
        likely = 1 if fanin_probs[i] >= 0.5 else 0
        phase = likely if rng.random() < 0.8 else 1 - likely
        cube = cube.with_literal(i, phase if high else 1 - phase)
    return cube


def _pick_outputs(rng: random.Random, net: Network,
                  n_outputs: int) -> list[str]:
    """Prefer deep nodes with no fanout (natural cone tips)."""
    fanouts = net.fanouts()
    levels = net.level_map()
    tips = [n for n in net.nodes if not fanouts[n]]
    tips.sort(key=lambda n: -levels[n])
    chosen = tips[:n_outputs]
    if len(chosen) < n_outputs:
        rest = sorted((n for n in net.nodes if n not in chosen),
                      key=lambda n: -levels[n])
        chosen += rest[:n_outputs - len(chosen)]
    if len(chosen) < n_outputs:
        # Degenerate tiny networks: allow duplicate-driver outputs.
        pool = list(net.nodes) or list(net.inputs)
        while len(chosen) < n_outputs:
            chosen.append(rng.choice(pool))
    return chosen


def sized_network(seed: int, target_gates: int, n_inputs: int,
                  n_outputs: int, gate_counter, tolerance: float = 0.10,
                  max_iterations: int = 6, name: str = "sized",
                  **kwargs) -> Network:
    """Generate a network whose *mapped* gate count hits a target.

    ``gate_counter`` maps a Network to a gate count (e.g. quick-map and
    count).  A secant-style search adjusts the node count until the
    count is within ``tolerance`` of ``target_gates`` (or iterations run
    out — the closest attempt is returned).
    """
    n_nodes = max(4, int(target_gates * 0.55))
    best = None
    best_error = float("inf")
    for _ in range(max_iterations):
        net = random_network(seed, n_nodes, n_inputs, n_outputs,
                             name=name, **kwargs)
        gates = gate_counter(net)
        error = abs(gates - target_gates) / max(target_gates, 1)
        if error < best_error:
            best, best_error = net, error
        if error <= tolerance:
            break
        if gates <= 0:
            n_nodes *= 2
        else:
            n_nodes = max(4, int(round(n_nodes * target_gates / gates)))
    return best
