"""Switching-activity power estimation.

The paper computes power as "the total switching activity of the gates
in the circuit".  We estimate it by simulating consecutive pairs of
random input vectors and counting output toggles per gate, optionally
weighting each toggle by the cell's relative power figure.
"""

from __future__ import annotations

import numpy as np

from .simulator import WORD_BITS, bit_count, get_simulator


def switching_activity(circuit, n_words: int = 16, seed: int = 2008,
                       weighted: bool = False) -> float:
    """Expected number of gate toggles per input transition.

    ``weighted=True`` scales each gate's toggle rate by its library
    cell's ``power`` figure (only meaningful for mapped netlists).
    """
    sim = get_simulator(circuit)
    rng = np.random.default_rng(seed)
    before = sim.run(sim.random_inputs(rng, n_words))
    after = sim.run(sim.random_inputs(rng, n_words))
    transitions = n_words * WORD_BITS
    gate_rows = slice(sim.num_inputs, len(sim.signals))
    toggles = bit_count(before[gate_rows] ^ after[gate_rows]).sum(
        axis=1, dtype=np.int64) / transitions
    if weighted:
        weights = _gate_weights(circuit)
        names = sim.signals[sim.num_inputs:]
        toggles = toggles * np.array([weights.get(n, 1.0)
                                      for n in names])
    return float(toggles.sum())


def power_overhead(base_power: float, total_power: float) -> float:
    """Extra power as a percentage of the base circuit's power."""
    if base_power <= 0:
        return 0.0
    return 100.0 * (total_power - base_power) / base_power


def _gate_weights(circuit) -> dict[str, float]:
    gates = getattr(circuit, "gates", None)
    if gates is None:
        return {}
    return {name: gate.cell.power for name, gate in gates.items()}
