"""Switching-activity power estimation.

The paper computes power as "the total switching activity of the gates
in the circuit".  We estimate it by simulating consecutive pairs of
random input vectors and counting output toggles per gate, optionally
weighting each toggle by the cell's relative power figure.
"""

from __future__ import annotations

import numpy as np

from .simulator import WORD_BITS, BitSimulator, popcount


def switching_activity(circuit, n_words: int = 16, seed: int = 2008,
                       weighted: bool = False) -> float:
    """Expected number of gate toggles per input transition.

    ``weighted=True`` scales each gate's toggle rate by its library
    cell's ``power`` figure (only meaningful for mapped netlists).
    """
    sim = BitSimulator(circuit)
    rng = np.random.default_rng(seed)
    before = sim.run(sim.random_inputs(rng, n_words))
    after = sim.run(sim.random_inputs(rng, n_words))
    transitions = n_words * WORD_BITS
    total = 0.0
    weights = _gate_weights(circuit) if weighted else None
    for name in sim.signals[sim.num_inputs:]:
        idx = sim.index[name]
        toggles = popcount(before[idx] ^ after[idx]) / transitions
        if weights is not None:
            toggles *= weights.get(name, 1.0)
        total += toggles
    return total


def power_overhead(base_power: float, total_power: float) -> float:
    """Extra power as a percentage of the base circuit's power."""
    if base_power <= 0:
        return 0.0
    return 100.0 * (total_power - base_power) / base_power


def _gate_weights(circuit) -> dict[str, float]:
    gates = getattr(circuit, "gates", None)
    if gates is None:
        return {}
    return {name: gate.cell.power for name, gate in gates.items()}
