"""Fault-simulation campaigns.

Implements the paper's evaluation loop: simulate random input vectors
against every single stuck-at fault and classify the resulting primary
output errors by direction (0->1 vs 1->0).  Bit-parallel words make each
(fault, word) simulation cover 64 runs of the paper's campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .faults import Fault, fault_list
from .simulator import WORD_BITS, BitSimulator, popcount


@dataclass
class OutputErrorStats:
    """Per-output error-direction counts across a campaign."""

    zero_to_one: int = 0
    one_to_zero: int = 0

    @property
    def total(self) -> int:
        return self.zero_to_one + self.one_to_zero

    @property
    def dominant_direction(self) -> str:
        """'0->1' or '1->0', whichever occurred more often."""
        return "0->1" if self.zero_to_one >= self.one_to_zero else "1->0"

    @property
    def skew(self) -> float:
        """Fraction of errors in the dominant direction (0.5 .. 1.0)."""
        if self.total == 0:
            return 1.0
        return max(self.zero_to_one, self.one_to_zero) / self.total


@dataclass
class FaultSimReport:
    """Aggregate result of a fault-injection campaign."""

    runs: int
    error_runs: int
    per_output: dict[str, OutputErrorStats] = field(default_factory=dict)
    per_fault_errors: dict[Fault, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.error_runs / self.runs if self.runs else 0.0


def run_campaign(circuit, n_words: int = 8, seed: int = 2008,
                 faults: list[Fault] | None = None,
                 track_per_fault: bool = False) -> FaultSimReport:
    """Fault-simulate ``circuit`` and tally output error directions.

    Every fault is simulated against ``n_words * 64`` random vectors
    (fresh vectors per fault, as in a random (vector, fault) campaign).
    An *error run* is a (vector, fault) pair for which at least one
    primary output differs from the golden value.
    """
    sim = BitSimulator(circuit)
    if faults is None:
        faults = fault_list(circuit)
    rng = np.random.default_rng(seed)
    report = FaultSimReport(runs=0, error_runs=0)
    for po in sim.output_names:
        report.per_output[po] = OutputErrorStats()

    for fault in faults:
        pi_words = sim.random_inputs(rng, n_words)
        golden = sim.run(pi_words)
        overlay = sim.run_fault(golden, fault.signal, fault.stuck)
        golden_out = sim.outputs_of(golden)
        faulty_out = sim.faulty_outputs(golden, overlay)
        diff = golden_out ^ faulty_out
        report.runs += n_words * WORD_BITS
        if diff.any():
            any_error = np.zeros(n_words, dtype=np.uint64)
            for row in diff:
                any_error |= row
            n_errors = popcount(any_error)
            report.error_runs += n_errors
            if track_per_fault:
                report.per_fault_errors[fault] = n_errors
            for po, g_row, d_row in zip(sim.output_names, golden_out,
                                        diff):
                stats = report.per_output[po]
                # golden 0, faulty 1 where diff & ~golden.
                stats.zero_to_one += popcount(d_row & ~g_row)
                stats.one_to_zero += popcount(d_row & g_row)
        elif track_per_fault:
            report.per_fault_errors[fault] = 0
    return report
