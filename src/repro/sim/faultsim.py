"""Fault-simulation campaigns.

Implements the paper's evaluation loop: simulate random input vectors
against every single stuck-at fault and classify the resulting primary
output errors by direction (0->1 vs 1->0).  Bit-parallel words make each
(fault, word) simulation cover 64 runs of the paper's campaign.

Two campaign modes exist:

* ``"shared"`` (default): one vector block and one golden simulation
  are shared across all faults, and faults are re-evaluated in batches
  on the compiled tape (:meth:`BitSimulator.run_stuck_batch`).  This is
  the fast path — orders of magnitude quicker than per-fault golden
  regeneration on large circuits.
* ``"per-fault"``: fresh random vectors and a fresh golden run per
  fault, exactly the seed engine's sampling scheme (kept for
  statistical parity experiments and as the equivalence baseline).

Both modes estimate the same campaign statistics; they differ only in
how vectors are drawn, not in the fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .faults import Fault, fault_list
from .simulator import (WORD_BITS, BitSimulator, bit_count, get_simulator,
                        popcount)

#: Fault lanes evaluated together in one batched tape pass.
DEFAULT_BATCH = 32


@dataclass
class OutputErrorStats:
    """Per-output error-direction counts across a campaign."""

    zero_to_one: int = 0
    one_to_zero: int = 0

    @property
    def total(self) -> int:
        return self.zero_to_one + self.one_to_zero

    @property
    def dominant_direction(self) -> str:
        """'0->1' or '1->0', whichever occurred more often."""
        return "0->1" if self.zero_to_one >= self.one_to_zero else "1->0"

    @property
    def skew(self) -> float:
        """Fraction of errors in the dominant direction (0.5 .. 1.0)."""
        if self.total == 0:
            return 1.0
        return max(self.zero_to_one, self.one_to_zero) / self.total


@dataclass
class FaultSimReport:
    """Aggregate result of a fault-injection campaign."""

    runs: int
    error_runs: int
    per_output: dict[str, OutputErrorStats] = field(default_factory=dict)
    per_fault_errors: dict[Fault, int] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.error_runs / self.runs if self.runs else 0.0


def batched(faults: list[Fault], sim: BitSimulator,
            batch_size: int = DEFAULT_BATCH):
    """Yield fault batches sorted by site depth.

    Sorting groups faults of similar logic level, so each batched tape
    pass skips the levels below its shallowest site (see
    :meth:`BitSimulator.run_forced_batch`).
    """
    ordered = sorted(faults, key=lambda f: sim.site_level(f.signal))
    for start in range(0, len(ordered), batch_size):
        yield ordered[start:start + batch_size]


def run_campaign(circuit, n_words: int = 8, seed: int = 2008,
                 faults: list[Fault] | None = None,
                 track_per_fault: bool = False,
                 vector_mode: str = "shared",
                 batch_size: int = DEFAULT_BATCH) -> FaultSimReport:
    """Fault-simulate ``circuit`` and tally output error directions.

    Every fault is simulated against ``n_words * 64`` random vectors.
    ``vector_mode="shared"`` draws one vector block for the whole
    campaign and batches fault evaluation; ``"per-fault"`` draws fresh
    vectors per fault, as in a random (vector, fault) campaign.  An
    *error run* is a (vector, fault) pair for which at least one
    primary output differs from the golden value.
    """
    sim = get_simulator(circuit)
    if faults is None:
        faults = fault_list(circuit)
    rng = np.random.default_rng(seed)
    report = FaultSimReport(runs=0, error_runs=0)
    for po in sim.output_names:
        report.per_output[po] = OutputErrorStats()
    if vector_mode == "shared":
        _campaign_shared(sim, faults, rng, n_words, report,
                         track_per_fault, batch_size)
    elif vector_mode == "per-fault":
        _campaign_per_fault(sim, faults, rng, n_words, report,
                            track_per_fault)
    else:
        raise ValueError(f"unknown vector_mode {vector_mode!r}; "
                         "expected 'shared' or 'per-fault'")
    return report


def _campaign_shared(sim: BitSimulator, faults, rng, n_words, report,
                     track_per_fault, batch_size) -> None:
    pi_words = sim.random_inputs(rng, n_words)
    golden = sim.run(pi_words)
    golden_out = sim.outputs_of(golden)            # (P, W)
    report.runs = len(faults) * n_words * WORD_BITS
    n_outputs = len(sim.output_names)
    zero_to_one = np.zeros(n_outputs, dtype=np.int64)
    one_to_zero = np.zeros(n_outputs, dtype=np.int64)
    for batch in batched(faults, sim, batch_size):
        scratch = sim.run_stuck_batch(golden, batch)
        diff = scratch[sim.output_indices] ^ golden_out[:, None, :]
        any_error = np.bitwise_or.reduce(diff, axis=0)     # (B, W)
        per_fault = bit_count(any_error).sum(axis=1, dtype=np.int64)
        report.error_runs += int(per_fault.sum())
        if track_per_fault:
            for fault, count in zip(batch, per_fault):
                report.per_fault_errors[fault] = int(count)
        lifted = golden_out[:, None, :]
        zero_to_one += bit_count(diff & ~lifted).sum(axis=(1, 2),
                                                     dtype=np.int64)
        one_to_zero += bit_count(diff & lifted).sum(axis=(1, 2),
                                                    dtype=np.int64)
    for po, up, down in zip(sim.output_names, zero_to_one, one_to_zero):
        stats = report.per_output[po]
        stats.zero_to_one += int(up)
        stats.one_to_zero += int(down)


def _campaign_per_fault(sim: BitSimulator, faults, rng, n_words, report,
                        track_per_fault) -> None:
    for fault in faults:
        pi_words = sim.random_inputs(rng, n_words)
        golden = sim.run(pi_words)
        overlay = sim.run_fault(golden, fault.signal, fault.stuck)
        golden_out = sim.outputs_of(golden)
        faulty_out = sim.faulty_outputs(golden, overlay)
        diff = golden_out ^ faulty_out
        report.runs += n_words * WORD_BITS
        if diff.any():
            any_error = np.bitwise_or.reduce(diff, axis=0)
            n_errors = popcount(any_error)
            report.error_runs += n_errors
            if track_per_fault:
                report.per_fault_errors[fault] = n_errors
            for po, g_row, d_row in zip(sim.output_names, golden_out,
                                        diff):
                stats = report.per_output[po]
                # golden 0, faulty 1 where diff & ~golden.
                stats.zero_to_one += popcount(d_row & ~g_row)
                stats.one_to_zero += popcount(d_row & g_row)
        elif track_per_fault:
            report.per_fault_errors[fault] = 0
