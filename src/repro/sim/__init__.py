"""Bit-parallel simulation, stuck-at faults, campaigns, and power."""

from .simulator import (WORD_BITS, BitSimulator, bit_count,
                        clear_simulator_cache, exhaustive_inputs,
                        get_simulator, popcount, signal_probabilities,
                        simulator_cache_stats)
from .faults import Fault, fault_list
from .faultsim import (DEFAULT_BATCH, FaultSimReport, OutputErrorStats,
                       batched, run_campaign)
from .power import power_overhead, switching_activity
from .delayfaults import (TransitionFault, late_value,
                          run_transition_fault, transition_fault_list)

__all__ = [
    "BitSimulator", "DEFAULT_BATCH", "Fault", "FaultSimReport",
    "OutputErrorStats", "WORD_BITS", "batched", "bit_count",
    "clear_simulator_cache", "exhaustive_inputs", "fault_list",
    "get_simulator", "popcount", "power_overhead",
    "simulator_cache_stats",
    "run_campaign", "run_transition_fault", "signal_probabilities",
    "switching_activity", "TransitionFault", "transition_fault_list",
    "late_value",
]
