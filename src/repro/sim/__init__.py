"""Bit-parallel simulation, stuck-at faults, campaigns, and power."""

from .simulator import (WORD_BITS, BitSimulator, exhaustive_inputs,
                        popcount, signal_probabilities)
from .faults import Fault, fault_list
from .faultsim import FaultSimReport, OutputErrorStats, run_campaign
from .power import power_overhead, switching_activity
from .delayfaults import (TransitionFault, late_value,
                          run_transition_fault, transition_fault_list)

__all__ = [
    "BitSimulator", "Fault", "FaultSimReport", "OutputErrorStats",
    "WORD_BITS", "exhaustive_inputs", "fault_list", "popcount",
    "power_overhead",
    "run_campaign", "run_transition_fault", "signal_probabilities",
    "switching_activity", "TransitionFault", "transition_fault_list",
    "late_value",
]
