"""Single stuck-at fault model.

The paper's campaigns use "the single stuck-at fault model with all the
gates in the circuit having the same probability of failure": a fault
site is a gate output, stuck at 0 or 1, every site equally likely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network import Network
from repro.synth.netlist import MappedNetlist


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a named signal."""

    signal: str
    stuck: int  # 0 or 1

    def __post_init__(self):
        if self.stuck not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.signal}/sa{self.stuck}"


def fault_list(circuit: Network | MappedNetlist,
               include_inputs: bool = False,
               signals: list[str] | None = None) -> list[Fault]:
    """All single stuck-at faults at gate outputs (optionally also PIs).

    ``signals`` restricts sites to a subset — used to confine injection
    to the original circuit inside a combined CED netlist.
    """
    if signals is None:
        if isinstance(circuit, MappedNetlist):
            sites = list(circuit.gates)
        else:
            sites = list(circuit.topological_order())
        if include_inputs:
            sites = list(circuit.inputs) + sites
    else:
        sites = list(signals)
    faults = []
    for site in sites:
        faults.append(Fault(site, 0))
        faults.append(Fault(site, 1))
    return faults
