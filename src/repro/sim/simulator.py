"""Bit-parallel logic simulation.

Simulates :class:`~repro.network.Network` or
:class:`~repro.synth.netlist.MappedNetlist` circuits 64 input vectors at
a time using numpy uint64 words.  This is the engine behind reliability
analysis, CED-coverage campaigns, and switching-activity power
estimation — the roles the authors' fault-injection framework played.

Fault injection uses transitive-fanout overlays: a stuck-at value is
forced on one signal and only its fanout cone is re-evaluated, the rest
of the circuit aliasing the golden values.
"""

from __future__ import annotations

import numpy as np

from repro.network import Network
from repro.synth.netlist import MappedNetlist

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class BitSimulator:
    """A compiled, index-based simulator for one circuit."""

    def __init__(self, circuit: Network | MappedNetlist):
        self.circuit = circuit
        if isinstance(circuit, MappedNetlist):
            inputs = circuit.inputs
            order = circuit.topological_order()
            local = {name: (circuit.gates[name].fanins,
                            circuit.gates[name].cell.cover)
                     for name in order}
            self.output_names = list(circuit.outputs)
            output_signals = [circuit.po_signals[po]
                              for po in circuit.outputs]
        elif isinstance(circuit, Network):
            inputs = circuit.inputs
            order = circuit.topological_order()
            local = {name: (circuit.nodes[name].fanins,
                            circuit.nodes[name].cover)
                     for name in order}
            self.output_names = list(circuit.outputs)
            output_signals = list(circuit.outputs)
        else:
            raise TypeError(f"cannot simulate {type(circuit).__name__}")

        self.signals: list[str] = list(inputs) + list(order)
        self.index: dict[str, int] = {s: i for i, s in
                                      enumerate(self.signals)}
        self.num_inputs = len(inputs)
        self.input_names = list(inputs)
        self.output_indices = [self.index[s] for s in output_signals]

        # Compile each step to (out_idx, [(pos_idx_tuple, neg_idx_tuple)]).
        self.steps: list[tuple[int, list[tuple[tuple[int, ...],
                                               tuple[int, ...]]]]] = []
        for name in order:
            fanins, cover = local[name]
            fanin_idx = [self.index[f] for f in fanins]
            cubes = []
            for cube in cover.cubes:
                pos = tuple(fanin_idx[i] for i in range(cube.n)
                            if cube.ones >> i & 1)
                neg = tuple(fanin_idx[i] for i in range(cube.n)
                            if cube.zeros >> i & 1)
                cubes.append((pos, neg))
            self.steps.append((self.index[name], cubes))
        self._step_of: dict[int, int] = {
            out: i for i, (out, _) in enumerate(self.steps)}

        # Fanout adjacency on indices, for fault cones.
        self._readers: list[list[int]] = [[] for _ in self.signals]
        self._step_fanins: list[tuple[int, ...]] = []
        for out, cubes in self.steps:
            seen: set[int] = set()
            ordered: list[int] = []
            for pos, neg in cubes:
                for idx in pos + neg:
                    if idx not in seen:
                        seen.add(idx)
                        ordered.append(idx)
                        self._readers[idx].append(out)
            self._step_fanins.append(tuple(ordered))
        self._tfo_cache: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Input generation
    # ------------------------------------------------------------------
    def random_inputs(self, rng: np.random.Generator,
                      n_words: int) -> np.ndarray:
        """Uniform random input words, shape (num_inputs, n_words)."""
        return rng.integers(0, 1 << 64, size=(self.num_inputs, n_words),
                            dtype=np.uint64)

    # ------------------------------------------------------------------
    # Golden simulation
    # ------------------------------------------------------------------
    def run(self, pi_words: np.ndarray) -> np.ndarray:
        """Simulate; returns values for all signals, shape (S, n_words)."""
        if pi_words.shape[0] != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input rows, "
                f"got {pi_words.shape[0]}")
        n_words = pi_words.shape[1]
        values = np.zeros((len(self.signals), n_words), dtype=np.uint64)
        values[:self.num_inputs] = pi_words
        for out, cubes in self.steps:
            values[out] = _eval_cubes(cubes, values, n_words)
        return values

    def outputs_of(self, values: np.ndarray) -> np.ndarray:
        return values[self.output_indices]

    # ------------------------------------------------------------------
    # Faulty simulation
    # ------------------------------------------------------------------
    def fanout_cone(self, signal: str) -> list[int]:
        """Topologically sorted step-output indices affected by a fault."""
        site = self.index[signal]
        cached = self._tfo_cache.get(site)
        if cached is not None:
            return cached
        affected: set[int] = set()
        stack = list(self._readers[site])
        while stack:
            idx = stack.pop()
            if idx in affected:
                continue
            affected.add(idx)
            stack.extend(self._readers[idx])
        cone = sorted(affected, key=lambda idx: self._step_of[idx])
        self._tfo_cache[site] = cone
        return cone

    def run_fault(self, golden: np.ndarray, signal: str,
                  stuck: int) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` stuck at 0/1.

        Returns an overlay mapping signal index to its faulty word array;
        signals outside the fault cone keep their golden values.
        """
        n_words = golden.shape[1]
        forced = np.full(n_words, _ALL_ONES if stuck else 0,
                         dtype=np.uint64)
        return self.run_forced(golden, signal, forced)

    def run_forced(self, golden: np.ndarray, signal: str,
                   forced: np.ndarray) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` forced to an arbitrary word value.

        Generalizes stuck-at injection; used for toggle faults and for
        transition (delay) faults where the forced value depends on the
        previous vector.
        """
        site = self.index[signal]
        n_words = golden.shape[1]
        overlay: dict[int, np.ndarray] = {site: forced}
        if np.array_equal(forced, golden[site]):
            return overlay  # fault never excites: cone is unchanged
        for idx in self.fanout_cone(signal):
            step = self._step_of[idx]
            if not any(f in overlay for f in self._step_fanins[step]):
                continue  # no changed fanin: gate keeps its golden value
            _, cubes = self.steps[step]
            faulty = _eval_cubes_overlay(cubes, golden, overlay, n_words)
            if not np.array_equal(faulty, golden[idx]):
                overlay[idx] = faulty
        return overlay

    def run_toggle(self, golden: np.ndarray,
                   signal: str) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` inverted on every vector.

        Used for observability estimation: the fraction of vectors on
        which some output changes is exactly the signal's global
        observability.
        """
        site = self.index[signal]
        overlay: dict[int, np.ndarray] = {site: ~golden[site]}
        n_words = golden.shape[1]
        for idx in self.fanout_cone(signal):
            step = self._step_of[idx]
            if not any(f in overlay for f in self._step_fanins[step]):
                continue
            _, cubes = self.steps[step]
            flipped = _eval_cubes_overlay(cubes, golden, overlay, n_words)
            if not np.array_equal(flipped, golden[idx]):
                overlay[idx] = flipped
        return overlay

    def faulty_outputs(self, golden: np.ndarray,
                       overlay: dict[int, np.ndarray]) -> np.ndarray:
        rows = [overlay.get(idx, golden[idx])
                for idx in self.output_indices]
        return np.stack(rows) if rows else np.zeros((0, golden.shape[1]),
                                                    dtype=np.uint64)

    def value_of(self, golden: np.ndarray,
                 overlay: dict[int, np.ndarray] | None,
                 signal: str) -> np.ndarray:
        idx = self.index[signal]
        if overlay is not None and idx in overlay:
            return overlay[idx]
        return golden[idx]


def _eval_cubes(cubes, values, n_words) -> np.ndarray:
    acc = None
    for pos, neg in cubes:
        if pos:
            term = values[pos[0]].copy()
            for idx in pos[1:]:
                term &= values[idx]
        elif neg:
            term = ~values[neg[0]]
            neg = neg[1:]
        else:
            return np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for idx in neg:
            term &= ~values[idx]
        if acc is None:
            acc = term
        else:
            acc |= term
    if acc is None:
        return np.zeros(n_words, dtype=np.uint64)
    return acc


def _eval_cubes_overlay(cubes, golden, overlay, n_words) -> np.ndarray:
    acc = None
    for pos, neg in cubes:
        if pos:
            first = overlay[pos[0]] if pos[0] in overlay \
                else golden[pos[0]]
            term = first.copy()
            for idx in pos[1:]:
                term &= overlay[idx] if idx in overlay else golden[idx]
        elif neg:
            first = overlay.get(neg[0], None)
            term = ~(golden[neg[0]] if first is None else first)
            neg = neg[1:]
        else:
            return np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for idx in neg:
            term &= ~(overlay[idx] if idx in overlay else golden[idx])
        if acc is None:
            acc = term
        else:
            acc |= term
    if acc is None:
        return np.zeros(n_words, dtype=np.uint64)
    return acc


def exhaustive_inputs(num_inputs: int) -> np.ndarray:
    """All 2^n input patterns as packed words, shape (n, ceil(2^n/64)).

    Bit ``j`` of word ``w`` in row ``i`` carries input ``i`` of pattern
    ``64*w + j``, so one :meth:`BitSimulator.run` call simulates the
    whole truth table.  Practical up to ~20 inputs.
    """
    if num_inputs < 0 or num_inputs > 24:
        raise ValueError("exhaustive simulation supports 0..24 inputs")
    n_patterns = 1 << num_inputs
    n_words = max(1, (n_patterns + WORD_BITS - 1) // WORD_BITS)
    rows = np.zeros((num_inputs, n_words), dtype=np.uint64)
    # Inside a word, input i < 6 alternates in blocks of 2^i bits —
    # a constant mask; inputs i >= 6 are constant per word, following
    # bit (i - 6) of the word index.
    intra_masks = [0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC,
                   0xF0F0F0F0F0F0F0F0, 0xFF00FF00FF00FF00,
                   0xFFFF0000FFFF0000, 0xFFFFFFFF00000000]
    word_index = np.arange(n_words, dtype=np.uint64)
    for i in range(num_inputs):
        if i < 6:
            rows[i, :] = np.uint64(intra_masks[i])
        else:
            on = (word_index >> np.uint64(i - 6)) & np.uint64(1)
            rows[i] = np.where(on.astype(bool), _ALL_ONES, np.uint64(0))
    return rows


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a uint64 array."""
    return int(np.unpackbits(words.view(np.uint8)).sum())


def signal_probabilities(circuit, n_words: int = 32,
                         seed: int = 2008) -> dict[str, float]:
    """Monte-Carlo estimate of P(signal = 1) for every signal."""
    sim = BitSimulator(circuit)
    rng = np.random.default_rng(seed)
    values = sim.run(sim.random_inputs(rng, n_words))
    total = n_words * WORD_BITS
    return {name: popcount(values[sim.index[name]]) / total
            for name in sim.signals}
