"""Bit-parallel logic simulation.

Simulates :class:`~repro.network.Network` or
:class:`~repro.synth.netlist.MappedNetlist` circuits 64 input vectors at
a time using numpy uint64 words.  This is the engine behind reliability
analysis, CED-coverage campaigns, and switching-activity power
estimation — the roles the authors' fault-injection framework played.

Two evaluation paths coexist:

* a **compiled tape**: the circuit is lowered once into flat numpy index
  arrays grouped by logic level (literal indices, complement masks, and
  ``reduceat`` segment offsets), so :meth:`BitSimulator.run` evaluates a
  whole level with four vectorized calls instead of per-cube Python
  loops.  The tape also supports *batched* faulty evaluation
  (:meth:`BitSimulator.run_forced_batch`): many faults share one golden
  simulation and are re-evaluated together along an extra lane axis.
* the original **interpreter** (:meth:`BitSimulator.run_interpreted` and
  the overlay-based :meth:`BitSimulator.run_forced`), kept both as the
  reference oracle for equivalence tests and for sparse single-fault
  queries where a cone overlay beats a full batched pass.

Fault injection uses transitive-fanout overlays: a stuck-at value is
forced on one signal and only its fanout cone is re-evaluated, the rest
of the circuit aliasing the golden values.

Because every flow stage (reliability, coverage, power, masking,
observability) simulates the same handful of circuits, compiled
simulators are cached per circuit object via :func:`get_simulator`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.network import Network
from repro.synth.netlist import MappedNetlist

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class _TapeLevel:
    """One logic level of the compiled instruction tape.

    Literals of all cubes of all (non-constant) gates in the level are
    concatenated into ``lit_idx``/``lit_inv``; ``cube_starts`` segments
    them into cubes (AND-reduced) and ``gate_cube_starts`` segments the
    cube terms into gates (OR-reduced).  Constant gates — empty covers
    (0) and tautology cubes (1) — are materialized separately because
    ``reduceat`` cannot express empty segments.
    """

    lit_idx: np.ndarray          # (L,) intp   signal row per literal
    lit_inv: np.ndarray          # (L,) uint64 0 or ~0 xor-mask
    cube_starts: np.ndarray      # (C,) intp   literal offset per cube
    gate_cube_starts: np.ndarray  # (G,) intp  cube offset per gate
    gate_out: np.ndarray         # (G,) intp   output row per gate
    const_out: np.ndarray        # (K,) intp   rows of constant gates
    const_vals: np.ndarray       # (K,) uint64 their values


class BitSimulator:
    """A compiled, index-based simulator for one circuit."""

    def __init__(self, circuit: Network | MappedNetlist):
        self.circuit = circuit
        if isinstance(circuit, MappedNetlist):
            inputs = circuit.inputs
            order = circuit.topological_order()
            local = {name: (circuit.gates[name].fanins,
                            circuit.gates[name].cell.cover)
                     for name in order}
            self.output_names = list(circuit.outputs)
            output_signals = [circuit.po_signals[po]
                              for po in circuit.outputs]
        elif isinstance(circuit, Network):
            inputs = circuit.inputs
            order = circuit.topological_order()
            local = {name: (circuit.nodes[name].fanins,
                            circuit.nodes[name].cover)
                     for name in order}
            self.output_names = list(circuit.outputs)
            output_signals = list(circuit.outputs)
        else:
            raise TypeError(f"cannot simulate {type(circuit).__name__}")

        self.signals: list[str] = list(inputs) + list(order)
        self.index: dict[str, int] = {s: i for i, s in
                                      enumerate(self.signals)}
        self.num_inputs = len(inputs)
        self.input_names = list(inputs)
        self.output_indices = [self.index[s] for s in output_signals]

        # Compile each step to (out_idx, [(pos_idx_tuple, neg_idx_tuple)]).
        self.steps: list[tuple[int, list[tuple[tuple[int, ...],
                                               tuple[int, ...]]]]] = []
        for name in order:
            fanins, cover = local[name]
            fanin_idx = [self.index[f] for f in fanins]
            cubes = []
            for cube in cover.cubes:
                pos = tuple(fanin_idx[i] for i in range(cube.n)
                            if cube.ones >> i & 1)
                neg = tuple(fanin_idx[i] for i in range(cube.n)
                            if cube.zeros >> i & 1)
                cubes.append((pos, neg))
            self.steps.append((self.index[name], cubes))
        self._step_of: dict[int, int] = {
            out: i for i, (out, _) in enumerate(self.steps)}

        # Fanout adjacency on indices, for fault cones.
        self._readers: list[list[int]] = [[] for _ in self.signals]
        self._step_fanins: list[tuple[int, ...]] = []
        for out, cubes in self.steps:
            seen: set[int] = set()
            ordered: list[int] = []
            for pos, neg in cubes:
                for idx in pos + neg:
                    if idx not in seen:
                        seen.add(idx)
                        ordered.append(idx)
                        self._readers[idx].append(out)
            self._step_fanins.append(tuple(ordered))
        self._tfo_cache: dict[int, list[int]] = {}
        self._compile_tape()

    # ------------------------------------------------------------------
    # Tape compilation
    # ------------------------------------------------------------------
    def _compile_tape(self) -> None:
        """Lower the steps into levelized flat-array form."""
        level = np.zeros(len(self.signals), dtype=np.intp)
        for (out, _), fanins in zip(self.steps, self._step_fanins):
            level[out] = max((level[f] for f in fanins), default=0) + 1
        self._level_of_row = level

        by_level: dict[int, list[int]] = {}
        for si, (out, _) in enumerate(self.steps):
            by_level.setdefault(int(level[out]), []).append(si)
        max_level = max(by_level, default=0)

        self._tape: list[_TapeLevel] = []
        for lvl_no in range(1, max_level + 1):
            lit_idx: list[int] = []
            lit_inv: list[np.uint64] = []
            cube_starts: list[int] = []
            gate_cube_starts: list[int] = []
            gate_out: list[int] = []
            const_out: list[int] = []
            const_vals: list[np.uint64] = []
            n_cubes = 0
            for si in by_level.get(lvl_no, ()):
                out, cubes = self.steps[si]
                if not cubes:
                    const_out.append(out)
                    const_vals.append(np.uint64(0))
                    continue
                if any(not pos and not neg for pos, neg in cubes):
                    const_out.append(out)      # tautology cube wins
                    const_vals.append(_ALL_ONES)
                    continue
                gate_cube_starts.append(n_cubes)
                gate_out.append(out)
                for pos, neg in cubes:
                    cube_starts.append(len(lit_idx))
                    for idx in pos:
                        lit_idx.append(idx)
                        lit_inv.append(np.uint64(0))
                    for idx in neg:
                        lit_idx.append(idx)
                        lit_inv.append(_ALL_ONES)
                    n_cubes += 1
            self._tape.append(_TapeLevel(
                lit_idx=np.asarray(lit_idx, dtype=np.intp),
                lit_inv=np.asarray(lit_inv, dtype=np.uint64),
                cube_starts=np.asarray(cube_starts, dtype=np.intp),
                gate_cube_starts=np.asarray(gate_cube_starts,
                                            dtype=np.intp),
                gate_out=np.asarray(gate_out, dtype=np.intp),
                const_out=np.asarray(const_out, dtype=np.intp),
                const_vals=np.asarray(const_vals, dtype=np.uint64)))

    @property
    def depth(self) -> int:
        """Number of logic levels in the compiled tape."""
        return len(self._tape)

    def site_level(self, signal: str) -> int:
        """Logic level of a signal (0 for primary inputs)."""
        return int(self._level_of_row[self.index[signal]])

    def _run_tape(self, values: np.ndarray, first_level: int = 0) -> None:
        """Evaluate tape levels ``first_level..`` in place.

        ``values`` has shape (S, C) where C is any flattened column
        count (words, or lanes x words for batched evaluation).
        """
        for lvl in self._tape[first_level:]:
            self._eval_level(lvl, values)

    @staticmethod
    def _eval_level(lvl: _TapeLevel, values: np.ndarray) -> None:
        if lvl.lit_idx.size:
            lits = values[lvl.lit_idx]
            np.bitwise_xor(lits, lvl.lit_inv[:, None], out=lits)
            terms = np.bitwise_and.reduceat(lits, lvl.cube_starts,
                                            axis=0)
            values[lvl.gate_out] = np.bitwise_or.reduceat(
                terms, lvl.gate_cube_starts, axis=0)
        if lvl.const_out.size:
            values[lvl.const_out] = lvl.const_vals[:, None]

    # ------------------------------------------------------------------
    # Input generation
    # ------------------------------------------------------------------
    def random_inputs(self, rng: np.random.Generator,
                      n_words: int) -> np.ndarray:
        """Uniform random input words, shape (num_inputs, n_words)."""
        return rng.integers(0, 1 << 64, size=(self.num_inputs, n_words),
                            dtype=np.uint64)

    # ------------------------------------------------------------------
    # Golden simulation
    # ------------------------------------------------------------------
    def run(self, pi_words: np.ndarray) -> np.ndarray:
        """Simulate; returns values for all signals, shape (S, n_words).

        Uses the compiled tape; bit-identical to
        :meth:`run_interpreted`.
        """
        values = self._alloc_values(pi_words)
        self._run_tape(values)
        return values

    def run_interpreted(self, pi_words: np.ndarray) -> np.ndarray:
        """Reference interpreter: the original per-cube evaluation loop.

        Kept as the equivalence-test oracle and for before/after
        benchmarking of the compiled tape.
        """
        values = self._alloc_values(pi_words)
        n_words = pi_words.shape[1]
        for out, cubes in self.steps:
            values[out] = _eval_cubes(cubes, values, n_words)
        return values

    def _alloc_values(self, pi_words: np.ndarray) -> np.ndarray:
        if pi_words.shape[0] != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input rows, "
                f"got {pi_words.shape[0]}")
        values = np.zeros((len(self.signals), pi_words.shape[1]),
                          dtype=np.uint64)
        values[:self.num_inputs] = pi_words
        return values

    def outputs_of(self, values: np.ndarray) -> np.ndarray:
        return values[self.output_indices]

    # ------------------------------------------------------------------
    # Faulty simulation — batched (compiled tape)
    # ------------------------------------------------------------------
    def run_forced_batch(self, golden: np.ndarray,
                         site_rows: np.ndarray,
                         forced: np.ndarray) -> np.ndarray:
        """Re-simulate many forced-value faults against one golden run.

        ``site_rows`` (B,) are signal row indices, ``forced`` (B,
        n_words) the value each lane forces on its site.  Returns the
        full faulty value cube of shape (S, B, n_words): lane ``b``
        holds the circuit's values with ``site_rows[b]`` forced to
        ``forced[b]``, all lanes sharing ``golden``'s input vectors.

        Levels below the shallowest fault site are not re-evaluated
        (they cannot change), so batching faults of similar depth —
        e.g. sorting a fault list by :meth:`site_level` — skips most of
        the tape for faults near the outputs.
        """
        site_rows = np.asarray(site_rows, dtype=np.intp)
        forced = np.asarray(forced, dtype=np.uint64)
        n_signals = len(self.signals)
        n_lanes = site_rows.size
        n_words = golden.shape[1]
        scratch = np.empty((n_signals, n_lanes, n_words), dtype=np.uint64)
        scratch[:] = golden[:, None, :]
        if n_lanes == 0:
            return scratch
        lanes = np.arange(n_lanes, dtype=np.intp)
        levels = self._level_of_row[site_rows]
        lmin = int(levels.min())
        # Sites at the shallowest level (or on PIs) are forced up front;
        # deeper sites are recomputed by their own level's sweep and
        # overwritten with the forced value before any reader (always at
        # a strictly higher level) consumes them.
        head = levels <= lmin
        scratch[site_rows[head], lanes[head]] = forced[head]
        flat = scratch.reshape(n_signals, n_lanes * n_words)
        for ti in range(lmin, len(self._tape)):
            self._eval_level(self._tape[ti], flat)
            late = levels == ti + 1
            if late.any():
                scratch[site_rows[late], lanes[late]] = forced[late]
        return scratch

    def run_stuck_batch(self, golden: np.ndarray, faults) -> np.ndarray:
        """Batched stuck-at evaluation: one lane per fault.

        ``faults`` is a sequence of objects with ``signal`` and
        ``stuck`` attributes (:class:`~repro.sim.faults.Fault`).
        Returns the (S, B, n_words) faulty value cube.
        """
        n_words = golden.shape[1]
        site_rows = np.fromiter((self.index[f.signal] for f in faults),
                                dtype=np.intp, count=len(faults))
        forced = np.empty((len(faults), n_words), dtype=np.uint64)
        for lane, fault in enumerate(faults):
            forced[lane] = _ALL_ONES if fault.stuck else np.uint64(0)
        return self.run_forced_batch(golden, site_rows, forced)

    # ------------------------------------------------------------------
    # Faulty simulation — sparse overlays (interpreter)
    # ------------------------------------------------------------------
    def fanout_cone(self, signal: str) -> list[int]:
        """Topologically sorted step-output indices affected by a fault."""
        return self._fanout_cone_rows(self.index[signal])

    def _fanout_cone_rows(self, site: int) -> list[int]:
        cached = self._tfo_cache.get(site)
        if cached is not None:
            return cached
        affected: set[int] = set()
        stack = list(self._readers[site])
        while stack:
            idx = stack.pop()
            if idx in affected:
                continue
            affected.add(idx)
            stack.extend(self._readers[idx])
        cone = sorted(affected, key=lambda idx: self._step_of[idx])
        self._tfo_cache[site] = cone
        return cone

    def run_fault(self, golden: np.ndarray, signal: str,
                  stuck: int) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` stuck at 0/1.

        Returns an overlay mapping signal index to its faulty word array;
        signals outside the fault cone keep their golden values.
        """
        n_words = golden.shape[1]
        forced = np.full(n_words, _ALL_ONES if stuck else 0,
                         dtype=np.uint64)
        return self.run_forced(golden, signal, forced)

    def run_forced(self, golden: np.ndarray, signal: str,
                   forced: np.ndarray) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` forced to an arbitrary word value.

        Generalizes stuck-at injection; used for toggle faults and for
        transition (delay) faults where the forced value depends on the
        previous vector.
        """
        site = self.index[signal]
        overlay: dict[int, np.ndarray] = {site: forced}
        if np.array_equal(forced, golden[site]):
            return overlay  # fault never excites: cone is unchanged
        return self._propagate_overlay(golden, site, overlay)

    def run_toggle(self, golden: np.ndarray,
                   signal: str) -> dict[int, np.ndarray]:
        """Re-simulate with ``signal`` inverted on every vector.

        Used for observability estimation: the fraction of vectors on
        which some output changes is exactly the signal's global
        observability.
        """
        site = self.index[signal]
        overlay: dict[int, np.ndarray] = {site: ~golden[site]}
        return self._propagate_overlay(golden, site, overlay)

    def _propagate_overlay(self, golden: np.ndarray, site: int,
                           overlay: dict[int, np.ndarray]
                           ) -> dict[int, np.ndarray]:
        """Propagate an overlay through the fanout cone of ``site``."""
        n_words = golden.shape[1]
        for idx in self._fanout_cone_rows(site):
            step = self._step_of[idx]
            if not any(f in overlay for f in self._step_fanins[step]):
                continue  # no changed fanin: gate keeps its golden value
            _, cubes = self.steps[step]
            faulty = _eval_cubes_overlay(cubes, golden, overlay, n_words)
            if not np.array_equal(faulty, golden[idx]):
                overlay[idx] = faulty
        return overlay

    def faulty_outputs(self, golden: np.ndarray,
                       overlay: dict[int, np.ndarray]) -> np.ndarray:
        rows = [overlay.get(idx, golden[idx])
                for idx in self.output_indices]
        return np.stack(rows) if rows else np.zeros((0, golden.shape[1]),
                                                    dtype=np.uint64)

    def value_of(self, golden: np.ndarray,
                 overlay: dict[int, np.ndarray] | None,
                 signal: str) -> np.ndarray:
        idx = self.index[signal]
        if overlay is not None and idx in overlay:
            return overlay[idx]
        return golden[idx]


# ----------------------------------------------------------------------
# Simulator cache
# ----------------------------------------------------------------------
_SIM_CACHE: "weakref.WeakKeyDictionary[object, tuple[tuple, BitSimulator]]"
_SIM_CACHE = weakref.WeakKeyDictionary()

#: Running hit/miss counters for :func:`get_simulator`, surfaced through
#: flow traces.  ``uncacheable`` counts circuits that cannot be weakly
#: referenced and are recompiled on every call.
_SIM_CACHE_STATS = {"hits": 0, "misses": 0, "uncacheable": 0}


def _cache_fingerprint(circuit) -> tuple:
    """Version + structural fingerprint to catch post-compile mutation.

    Both ``Network`` and ``MappedNetlist`` expose a monotonic mutation
    ``version``, so in-place rewrites that keep the gate/IO counts
    unchanged still invalidate the entry.  The size counts stay in the
    key as a belt-and-braces check for foreign circuit objects that
    happen to expose a ``version`` attribute with other semantics.
    """
    version = getattr(circuit, "version", None)
    if isinstance(circuit, MappedNetlist):
        return (version, len(circuit.gates), len(circuit.inputs),
                len(circuit.outputs))
    return (version, len(circuit.nodes), len(circuit.inputs),
            len(circuit.outputs))


def get_simulator(circuit) -> BitSimulator:
    """Compile-once simulator lookup, keyed on circuit identity.

    Every flow stage (reliability, coverage, power, masking,
    observability) simulates the same few circuits; compiling the tape
    once per circuit object amortizes setup across the whole flow.
    Entries are keyed on the circuit's mutation :attr:`version` (plus
    gate/IO counts), so any structural mutation — including in-place
    cover rewrites that keep the size unchanged — recompiles the tape
    on the next lookup.
    """
    try:
        entry = _SIM_CACHE.get(circuit)
    except TypeError:            # unhashable / non-weakref-able object
        _SIM_CACHE_STATS["uncacheable"] += 1
        return BitSimulator(circuit)
    fingerprint = _cache_fingerprint(circuit)
    if entry is not None and entry[0] == fingerprint:
        _SIM_CACHE_STATS["hits"] += 1
        return entry[1]
    _SIM_CACHE_STATS["misses"] += 1
    sim = BitSimulator(circuit)
    _SIM_CACHE[circuit] = (fingerprint, sim)
    return sim


def simulator_cache_stats() -> dict[str, int]:
    """A snapshot of the :func:`get_simulator` hit/miss counters."""
    return dict(_SIM_CACHE_STATS)


def clear_simulator_cache() -> None:
    """Drop all cached compiled simulators (counters are kept)."""
    _SIM_CACHE.clear()


def _eval_cubes(cubes, values, n_words) -> np.ndarray:
    acc = None
    for pos, neg in cubes:
        if pos:
            term = values[pos[0]].copy()
            for idx in pos[1:]:
                term &= values[idx]
        elif neg:
            term = ~values[neg[0]]
            neg = neg[1:]
        else:
            return np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for idx in neg:
            term &= ~values[idx]
        if acc is None:
            acc = term
        else:
            acc |= term
    if acc is None:
        return np.zeros(n_words, dtype=np.uint64)
    return acc


def _eval_cubes_overlay(cubes, golden, overlay, n_words) -> np.ndarray:
    acc = None
    for pos, neg in cubes:
        if pos:
            first = overlay[pos[0]] if pos[0] in overlay \
                else golden[pos[0]]
            term = first.copy()
            for idx in pos[1:]:
                term &= overlay[idx] if idx in overlay else golden[idx]
        elif neg:
            first = overlay.get(neg[0], None)
            term = ~(golden[neg[0]] if first is None else first)
            neg = neg[1:]
        else:
            return np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for idx in neg:
            term &= ~(overlay[idx] if idx in overlay else golden[idx])
        if acc is None:
            acc = term
        else:
            acc |= term
    if acc is None:
        return np.zeros(n_words, dtype=np.uint64)
    return acc


def exhaustive_inputs(num_inputs: int) -> np.ndarray:
    """All 2^n input patterns as packed words, shape (n, ceil(2^n/64)).

    Bit ``j`` of word ``w`` in row ``i`` carries input ``i`` of pattern
    ``64*w + j``, so one :meth:`BitSimulator.run` call simulates the
    whole truth table.  Practical up to ~20 inputs.
    """
    if num_inputs < 0 or num_inputs > 24:
        raise ValueError("exhaustive simulation supports 0..24 inputs")
    n_patterns = 1 << num_inputs
    n_words = max(1, (n_patterns + WORD_BITS - 1) // WORD_BITS)
    rows = np.zeros((num_inputs, n_words), dtype=np.uint64)
    # Inside a word, input i < 6 alternates in blocks of 2^i bits —
    # a constant mask; inputs i >= 6 are constant per word, following
    # bit (i - 6) of the word index.
    intra_masks = [0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC,
                   0xF0F0F0F0F0F0F0F0, 0xFF00FF00FF00FF00,
                   0xFFFF0000FFFF0000, 0xFFFFFFFF00000000]
    word_index = np.arange(n_words, dtype=np.uint64)
    for i in range(num_inputs):
        if i < 6:
            rows[i, :] = np.uint64(intra_masks[i])
        else:
            on = (word_index >> np.uint64(i - 6)) & np.uint64(1)
            rows[i] = np.where(on.astype(bool), _ALL_ONES, np.uint64(0))
    return rows


# ----------------------------------------------------------------------
# Population counts
# ----------------------------------------------------------------------
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)],
                          dtype=np.uint8)


def bit_count(words: np.ndarray) -> np.ndarray:
    """Element-wise set-bit counts of a uint64 array (same shape).

    Uses ``np.bitwise_count`` when available, else a 256-entry byte
    LUT.  Both paths work on the packed words directly — unlike
    ``np.unpackbits``, which materializes one byte per *bit* (a 64x
    memory blow-up on uint64 data).
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    as_bytes = words.view(np.uint8).reshape(words.shape + (8,))
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.uint8)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a uint64 array."""
    if words.size == 0:
        return 0
    return int(bit_count(words).sum(dtype=np.int64))


def _popcount_unpackbits(words: np.ndarray) -> int:
    """The seed implementation; kept as the test oracle for popcount."""
    return int(np.unpackbits(words.view(np.uint8)).sum())


def signal_probabilities(circuit, n_words: int = 32,
                         seed: int = 2008) -> dict[str, float]:
    """Monte-Carlo estimate of P(signal = 1) for every signal."""
    sim = get_simulator(circuit)
    rng = np.random.default_rng(seed)
    values = sim.run(sim.random_inputs(rng, n_words))
    total = n_words * WORD_BITS
    counts = bit_count(values).sum(axis=1, dtype=np.int64)
    return {name: int(counts[sim.index[name]]) / total
            for name in sim.signals}
