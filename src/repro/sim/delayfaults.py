"""Transition (delay) fault model (paper Sec 5, item i).

A transition fault makes one gate slow-to-rise or slow-to-fall: when a
vector pair (v1, v2) would make the gate's output transition in the
slow direction, the sampled second-cycle value is still the first
cycle's value.  The fanout cone is re-evaluated combinationally with the
late value, modelling a speedpath that misses the sampling edge.

These are the "errors caused by delay faults on speed-paths" the paper
names as future work for approximate-logic CED: because the approximate
circuit's critical path is far shorter than the original's (the paper
measures -38%), the check side meets timing and catches the late
original output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simulator import BitSimulator, get_simulator


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise (slow_to=1) or slow-to-fall (slow_to=0) gate."""

    signal: str
    slow_to: int

    def __post_init__(self):
        if self.slow_to not in (0, 1):
            raise ValueError("slow_to must be 0 (fall) or 1 (rise)")

    def __str__(self) -> str:
        kind = "str" if self.slow_to else "stf"
        return f"{self.signal}/{kind}"


def transition_fault_list(circuit, signals=None) -> list[TransitionFault]:
    """Both transition faults for every gate output (or given signals)."""
    if signals is None:
        sim_signals = get_simulator(circuit)
        signals = sim_signals.signals[sim_signals.num_inputs:]
    faults = []
    for signal in signals:
        faults.append(TransitionFault(signal, 1))
        faults.append(TransitionFault(signal, 0))
    return faults


def late_value(first: np.ndarray, second: np.ndarray,
               slow_to: int) -> np.ndarray:
    """The sampled value of a slow gate given its two golden values.

    Bits transitioning in the slow direction keep the first-cycle
    value; all other bits take the second-cycle value.
    """
    if slow_to == 1:
        blocked = ~first & second      # 0 -> 1 transitions delayed
    else:
        blocked = first & ~second      # 1 -> 0 transitions delayed
    return (second & ~blocked) | (first & blocked)


def run_transition_fault(sim: BitSimulator, first_values: np.ndarray,
                         second_values: np.ndarray,
                         fault: TransitionFault) -> dict[int, np.ndarray]:
    """Second-cycle overlay for one transition fault on a vector pair."""
    idx = sim.index[fault.signal]
    forced = late_value(first_values[idx], second_values[idx],
                        fault.slow_to)
    return sim.run_forced(second_values, fault.signal, forced)


def run_transition_fault_batch(sim: BitSimulator,
                               first_values: np.ndarray,
                               second_values: np.ndarray,
                               faults: list[TransitionFault]
                               ) -> np.ndarray:
    """Batched second-cycle evaluation of many transition faults.

    All faults share the same golden vector pair; returns the faulty
    value cube of shape (S, len(faults), n_words) — lane ``b`` holds the
    second-cycle values with ``faults[b]``'s late value forced.
    """
    n_words = second_values.shape[1]
    site_rows = np.fromiter((sim.index[f.signal] for f in faults),
                            dtype=np.intp, count=len(faults))
    forced = np.empty((len(faults), n_words), dtype=np.uint64)
    for lane, fault in enumerate(faults):
        idx = site_rows[lane]
        forced[lane] = late_value(first_values[idx], second_values[idx],
                                  fault.slow_to)
    return sim.run_forced_batch(second_values, site_rows, forced)
