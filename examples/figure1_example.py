#!/usr/bin/env python3
"""Figure 1 walkthrough: exact vs ODC-based cube selection.

Rebuilds the paper's example circuit and shows the three published
selection outcomes at node n5 (fanins n2, n3, n4):

* solution 1 — exact selection with types {n2: 1, others DC}: one cube;
* solution 2 — exact selection with n4 also type 1: two cubes;
* ODC-based selection with solution 1's types: discovers the extra
  cube ``-11`` because the DC fanins are individually unobservable on
  it — the strictly richer search space of Sec 2.1.2.
"""

from repro.approx import NodeType, exact_select, odc_select
from repro.bench import figure1_network, figure1_selections
from repro.cubes import Cover


def show(title: str, cover: Cover) -> None:
    cubes = cover.to_strings() or ["(none — constant 0)"]
    print(f"  {title:<42s} {{ {', '.join(cubes)} }}")


def main() -> None:
    net = figure1_network()
    print("Example circuit (Fig. 1a):")
    for name in net.topological_order():
        node = net.nodes[name]
        print(f"  {name} = SOP{node.cover.to_strings()} over "
              f"{node.fanins}")
    sop = net.nodes["n5"].cover
    print(f"\nSelecting cubes from n5's SOP {sop.to_strings()} "
          f"(variables n2, n3, n4):\n")

    selections = figure1_selections()
    show("solution 1 (exact; n2=1, n3=DC, n4=DC):",
         selections["solution1"])
    show("solution 2 (exact; n2=1, n3=DC, n4=1):",
         selections["solution2"])
    show("ODC-based  (same types as solution 1):", selections["odc"])

    print("\nThe ODC selection covers everything exact selection found")
    print("plus the cube -11: on n3=1 & n4=1 neither DC fanin is")
    print("individually observable at n5, so the minterms are feasible")
    print("(single-bit-flip guarantee of Eq. 1).")

    richer = selections["solution1"].implies(selections["odc"]) and \
        not selections["odc"].implies(selections["solution1"])
    print(f"\nODC space strictly richer than exact: {richer}")


if __name__ == "__main__":
    main()
