#!/usr/bin/env python3
"""Quickstart: approximate a Boolean function and measure the trade-off.

Reproduces the paper's Section 2 motivating example:

    F = a + b + !c!d + cd    (7 gates with 1/2-input cells)
    G = a + b                (1 gate)

G is a 1-approximation of F (G => F) covering 12 of F's 14 minterms —
85.7% approximation for a fraction of the area — and then runs the full
synthesis algorithm on the same function to find an approximation
automatically.
"""

from repro.approx import (ApproxConfig, approximation_percentage,
                          synthesize_approximation)
from repro.cubes import Cover
from repro.network import Network
from repro.synth import LIB_GENERIC, technology_map


def build_paper_example() -> Network:
    net = Network("paper_example")
    for pi in "abcd":
        net.add_input(pi)
    net.add_node("y", ["a", "b", "c", "d"],
                 Cover.from_strings(["1---", "-1--", "--00", "--11"]))
    net.add_output("y")
    return net


def main() -> None:
    original = build_paper_example()

    # --- The hand-built approximation from the paper -----------------
    by_hand = Network("G")
    for pi in "abcd":
        by_hand.add_input(pi)
    by_hand.add_node("y", ["a", "b"], Cover.from_strings(["1-", "-1"]))
    by_hand.add_output("y")

    pct = approximation_percentage(original, by_hand, "y", direction=1)
    m_orig = technology_map(original, LIB_GENERIC)
    m_hand = technology_map(by_hand, LIB_GENERIC)
    print("Paper's hand example: G = a + b")
    print(f"  approximation percentage : {pct:.2f}%   (paper: 85.72%)")
    print(f"  original gates           : {m_orig.gate_count}")
    print(f"  approximation gates      : {m_hand.gate_count}")

    # --- The same function through the synthesis algorithm ------------
    result = synthesize_approximation(
        original, {"y": 1},
        ApproxConfig(cube_drop_threshold=0.3))
    assert result.all_correct, "synthesized approximation must be correct"
    pct_auto = approximation_percentage(original, result.approx, "y", 1)
    m_auto = technology_map(result.approx, LIB_GENERIC)
    print("\nSynthesized 1-approximation (cube_drop_threshold=0.3):")
    print(f"  node SOP                 : "
          f"{result.approx.nodes['y'].cover.to_strings()}")
    print(f"  approximation percentage : {pct_auto:.2f}%")
    print(f"  approximation gates      : {m_auto.gate_count}")
    print(f"  verified correct         : {result.all_correct}")


if __name__ == "__main__":
    main()
