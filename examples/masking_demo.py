#!/usr/bin/env python3
"""The Sec 5 extensions: error masking and delay-fault CED.

The paper's future-work list names two directions, both implemented in
this reproduction:

* **error masking** — a 0-approximation X of Y satisfies ``!X => !Y``,
  so ``Y AND X`` is provably never wrong when the circuit is fault-free
  and silently corrects 0->1 errors (dually ``Y OR X`` for
  1-approximations).  The same check symbol generator detects *and*
  masks.
* **delay-fault CED** — the approximate circuit's critical path is much
  shorter than the original's, so it meets timing when a speedpath in
  the original misses the sampling edge; transition faults on original
  gates become detectable output errors.
"""

import argparse

from repro.bench import load_benchmark, tiny_benchmark
from repro.ced import (build_masked_circuit, evaluate_delay_fault_ced,
                       evaluate_masking, run_ced_flow)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cmb")
    parser.add_argument("--words", type=int, default=8)
    args = parser.parse_args()

    net = tiny_benchmark() if args.benchmark == "tiny" \
        else load_benchmark(args.benchmark)
    flow = run_ced_flow(net, reliability_words=args.words,
                        coverage_words=args.words)
    print(f"Circuit {net.name}: "
          f"{flow.original_mapped.gate_count} gates, "
          f"CED coverage {flow.coverage.coverage:.1f}%")

    print("\n--- Error masking ---")
    masked = build_masked_circuit(flow.original_mapped,
                                  flow.approx_mapped,
                                  flow.assembly.directions)
    result = evaluate_masking(masked, n_words=args.words)
    print(f"raw output error rate    : {result.raw_error_rate:.4f}")
    print(f"masked output error rate : {result.masked_error_rate:.4f}")
    print(f"errors masked            : {result.reduction_pct:.1f}% "
          f"of raw errors")

    print("\n--- Delay-fault CED ---")
    delay = evaluate_delay_fault_ced(flow.assembly, n_words=args.words)
    print(f"transition-fault error runs : {delay.error_runs}")
    print(f"delay-fault CED coverage    : {delay.coverage:.1f}%")
    print(f"approx circuit delay margin : "
          f"{-flow.metrics['delay_change_pct']:.1f}% shorter critical "
          f"path than the original")


if __name__ == "__main__":
    main()
