#!/usr/bin/env python3
"""End-to-end CED flow on a benchmark circuit (the Fig. 2 architecture).

Runs every stage the paper describes: quick synthesis and mapping,
reliability analysis to pick each output's approximation direction,
approximate logic synthesis, checker assembly (0/1-approximate checkers
plus the TRC consolidation tree), and a fault-injection campaign that
measures CED coverage.  Compares against partial duplication and
single-bit parity prediction on the same circuit.
"""

import argparse

from repro.bench import load_benchmark, tiny_benchmark
from repro.ced import (build_parity_ced, build_partial_duplication,
                       evaluate_ced, run_ced_flow)
from repro.sim import switching_activity


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cmb",
                        help="suite benchmark name, or 'tiny'")
    parser.add_argument("--share-logic", action="store_true",
                        help="merge equivalent gates (Sec 3.1)")
    parser.add_argument("--words", type=int, default=4,
                        help="64-vector words per fault in campaigns")
    args = parser.parse_args()

    if args.benchmark == "tiny":
        net = tiny_benchmark()
    else:
        net = load_benchmark(args.benchmark)
    print(f"Circuit {net.name}: {len(net.inputs)} inputs, "
          f"{net.num_nodes} nodes, {len(net.outputs)} outputs")

    flow = run_ced_flow(net, share_logic=args.share_logic,
                        reliability_words=args.words,
                        coverage_words=args.words)
    summary = flow.summary()
    print("\nApproximate-logic CED (this paper):")
    print(f"  mapped gates              : "
          f"{flow.original_mapped.gate_count}")
    print(f"  approximation directions  : "
          f"{dict(sorted(flow.assembly.directions.items()))}")
    print(f"  approximation percentage  : "
          f"{summary['approximation_pct']:.1f}%")
    print(f"  area overhead (generator) : "
          f"{summary['area_overhead_pct']:.1f}%")
    print(f"  power overhead            : "
          f"{summary['power_overhead_pct']:.1f}%")
    print(f"  max CED coverage          : "
          f"{summary['max_ced_coverage_pct']:.1f}%")
    print(f"  achieved CED coverage     : "
          f"{summary['ced_coverage_pct']:.1f}%")
    print(f"  approx delay vs original  : "
          f"{summary['delay_change_pct']:+.1f}%")
    if args.share_logic:
        print(f"  gates shared (intrusive)  : "
              f"{flow.assembly.shared_gates}")

    original = flow.original_mapped
    base_power = switching_activity(original, n_words=8)

    print("\nPartial duplication [10] at matched area budget:")
    budget = max(summary["area_overhead_pct"], 5.0)
    pdup = build_partial_duplication(original, budget,
                                     n_words=args.words)
    dup_gates = sum(1 for g in pdup.netlist.gates
                    if g.startswith("dup_"))
    cov = evaluate_ced(pdup, n_words=args.words, seed=11)
    print(f"  duplicated area           : "
          f"{100 * dup_gates / original.gate_count:.1f}%")
    print(f"  CED coverage              : {cov.coverage:.1f}%")

    print("\nSingle-bit parity prediction:")
    parity = build_parity_ced(original, net)
    pp_gates = sum(1 for g in parity.netlist.gates
                   if g.startswith("pp_"))
    pp_power = switching_activity(parity.netlist, n_words=8)
    cov = evaluate_ced(parity, n_words=args.words, seed=11)
    print(f"  predictor area overhead   : "
          f"{100 * pp_gates / original.gate_count:.1f}%")
    print(f"  power overhead            : "
          f"{100 * (pp_power - base_power) / base_power:.1f}%")
    print(f"  CED coverage              : {cov.coverage:.1f}%")


if __name__ == "__main__":
    main()
