#!/usr/bin/env python3
"""Sweep the synthesis knobs: the fine-grained overhead/coverage curve.

The abstract's claim is that approximate-logic synthesis "provides
fine-grained trade-offs between area-power overhead and CED coverage".
This example sweeps the two main knobs — the DC threshold of type
assignment and the stage-1 cube-drop threshold — and prints the
resulting (area overhead, coverage) frontier for one benchmark.
"""

import argparse

from repro.approx import ApproxConfig
from repro.bench import load_benchmark, tiny_benchmark
from repro.ced import run_ced_flow


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cmb")
    parser.add_argument("--words", type=int, default=2)
    args = parser.parse_args()

    net = tiny_benchmark() if args.benchmark == "tiny" \
        else load_benchmark(args.benchmark)
    print(f"Circuit {net.name}: {net.num_nodes} nodes, "
          f"{len(net.outputs)} outputs\n")
    header = (f"{'dc_thr':>7} {'drop_thr':>9} {'area%':>7} "
              f"{'power%':>7} {'approx%':>8} {'cov%':>6} {'max%':>6}")
    print(header)
    print("-" * len(header))

    points = []
    for dc_threshold in (0.05, 0.25, 0.5, 0.75):
        for drop_threshold in (0.01, 0.1, 0.3):
            config = ApproxConfig(dc_threshold=dc_threshold,
                                  cube_drop_threshold=drop_threshold)
            flow = run_ced_flow(net, config=config,
                                reliability_words=args.words,
                                coverage_words=args.words)
            s = flow.summary()
            points.append((dc_threshold, drop_threshold, s))
            print(f"{dc_threshold:>7.2f} {drop_threshold:>9.2f} "
                  f"{s['area_overhead_pct']:>7.1f} "
                  f"{s['power_overhead_pct']:>7.1f} "
                  f"{s['approximation_pct']:>8.1f} "
                  f"{s['ced_coverage_pct']:>6.1f} "
                  f"{s['max_ced_coverage_pct']:>6.1f}")

    frontier = []
    for dc, drop, s in sorted(points,
                              key=lambda p: p[2]["area_overhead_pct"]):
        if not frontier or s["ced_coverage_pct"] > \
                frontier[-1][2]["ced_coverage_pct"]:
            frontier.append((dc, drop, s))
    print("\nPareto frontier (area% -> coverage%):")
    for dc, drop, s in frontier:
        print(f"  {s['area_overhead_pct']:6.1f}% -> "
              f"{s['ced_coverage_pct']:5.1f}%   "
              f"(dc_thr={dc}, drop_thr={drop})")


if __name__ == "__main__":
    main()
