#!/usr/bin/env python3
"""Sweep the synthesis knobs: the fine-grained overhead/coverage curve.

The abstract's claim is that approximate-logic synthesis "provides
fine-grained trade-offs between area-power overhead and CED coverage".
This example sweeps the two main knobs — the DC threshold of type
assignment and the stage-1 cube-drop threshold — as a parallel
``repro.lab`` grid (cached in ``.lab_cache/``, manifest under
``results/runs/``), then prints the resulting (area overhead,
coverage) frontier for one benchmark.

Workers default to ``REPRO_LAB_WORKERS`` / ``cpu_count() - 1``; pass
``--workers serial`` to debug inline.  A killed sweep resumes from the
cache when re-invoked with the same arguments.
"""

import argparse

from repro.lab import ArtifactStore, Job, JobGraph, LabRunner
from repro.lab.tasks import ced_flow_task, load_circuit

DC_THRESHOLDS = (0.05, 0.25, 0.5, 0.75)
DROP_THRESHOLDS = (0.01, 0.1, 0.3)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cmb")
    parser.add_argument("--words", type=int, default=2)
    parser.add_argument("--workers", default=None,
                        help="worker count or 'serial' (default: "
                             "REPRO_LAB_WORKERS env, cpu_count()-1)")
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    net = load_circuit(args.benchmark)
    print(f"Circuit {net.name}: {net.num_nodes} nodes, "
          f"{len(net.outputs)} outputs\n")

    graph = JobGraph(root_seed=2008)
    for dc_threshold in DC_THRESHOLDS:
        for drop_threshold in DROP_THRESHOLDS:
            name = (f"{args.benchmark}/dc{dc_threshold:g}"
                    f"/drop{drop_threshold:g}")
            graph.add(Job(name, ced_flow_task, params={
                "circuit": args.benchmark,
                "words": args.words,
                "config": {
                    "dc_threshold": dc_threshold,
                    "cube_drop_threshold": drop_threshold,
                },
            }))
    runner = LabRunner(
        workers=args.workers,
        cache=None if args.no_cache else ArtifactStore(),
        manifest_extra={"command": "tradeoff_sweep",
                        "benchmark": args.benchmark})
    run = runner.run(graph, run_id=f"tradeoff-{args.benchmark}")

    header = (f"{'dc_thr':>7} {'drop_thr':>9} {'area%':>7} "
              f"{'power%':>7} {'approx%':>8} {'cov%':>6} {'max%':>6}")
    print()
    print(header)
    print("-" * len(header))

    points = []
    for dc_threshold in DC_THRESHOLDS:
        for drop_threshold in DROP_THRESHOLDS:
            name = (f"{args.benchmark}/dc{dc_threshold:g}"
                    f"/drop{drop_threshold:g}")
            s = run.value(name)["summary"]
            points.append((dc_threshold, drop_threshold, s))
            print(f"{dc_threshold:>7.2f} {drop_threshold:>9.2f} "
                  f"{s['area_overhead_pct']:>7.1f} "
                  f"{s['power_overhead_pct']:>7.1f} "
                  f"{s['approximation_pct']:>8.1f} "
                  f"{s['ced_coverage_pct']:>6.1f} "
                  f"{s['max_ced_coverage_pct']:>6.1f}")

    frontier = []
    for dc, drop, s in sorted(points,
                              key=lambda p: p[2]["area_overhead_pct"]):
        if not frontier or s["ced_coverage_pct"] > \
                frontier[-1][2]["ced_coverage_pct"]:
            frontier.append((dc, drop, s))
    print("\nPareto frontier (area% -> coverage%):")
    for dc, drop, s in frontier:
        print(f"  {s['area_overhead_pct']:6.1f}% -> "
              f"{s['ced_coverage_pct']:5.1f}%   "
              f"(dc_thr={dc}, drop_thr={drop})")
    print(f"\nmanifest: {run.manifest_path}")


if __name__ == "__main__":
    main()
